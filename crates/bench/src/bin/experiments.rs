//! The experiment harness: regenerates every figure of the demo paper as
//! a deterministic table.
//!
//! ```text
//! cargo run --release -p neurospatial-bench --bin experiments        # all
//! cargo run --release -p neurospatial-bench --bin experiments e4    # one
//!
//! # restrict the backend race / walkthrough methods from the CLI
//! # (names parsed via FromStr — any alias IndexBackend/WalkthroughMethod
//! # accepts works here):
//! cargo run ... --bin experiments e1 --backends=flat,str-packed
//! cargo run ... --bin experiments e4 --methods=none,scout
//!
//! # sharded-vs-monolithic throughput race (every backend):
//! cargo run ... --bin experiments --scenario=throughput --threads=4 --shards=8
//!
//! # unified Query API race: collect vs stream vs session (E8):
//! cargo run ... --bin experiments --scenario=api --strict
//! ```
//!
//! Mapping (see DESIGN.md §4 for the full index):
//!   e1 — Fig. 2+3: FLAT vs R-Tree range-query statistics, plus the
//!                  backend race through the SpatialIndex trait
//!   e2 — Fig. 4:   crawl behaviour and R-Tree node accesses per level
//!   e3 — Fig. 5:   SCOUT candidate-set pruning
//!   e4 — Fig. 6:   walkthrough prefetching comparison (up-to-15× claim)
//!   e5 — Fig. 7:   TOUCH vs join baselines (10×/100× claims)
//!   e6 — §1:       scaling with model size
//!   api (E8):      unified Query builder — collect vs stream vs session,
//!                  predicate pushdown, 0-alloc streaming (BENCH_api.json)

use neurospatial::model::CircuitBuilder;
use neurospatial::prelude::*;
use neurospatial::scout::{PrefetchContext, ScoutPrefetcher};
use neurospatial_bench::*;
use neurospatial_server::protocol::QueryDescView;
use neurospatial_server::{serve_with, Client, ClientError, FilterRegistry, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every heap allocation the process performs — the instrument
/// behind the hotpath scenario's allocs/query column. `realloc` and
/// `alloc_zeroed` count too (a growing `Vec` is exactly the churn the
/// scratch paths exist to eliminate); `dealloc` is free.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Parse a `--flag=a,b,c` list via `FromStr`, exiting with the parser's
/// diagnostic (which lists the known names) on a bad entry.
fn parse_list<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Vec<T>>
where
    T::Err: std::fmt::Display,
{
    let prefix = format!("--{flag}=");
    let raw = args.iter().find_map(|a| a.strip_prefix(&prefix))?;
    let mut out = Vec::new();
    for name in raw.split(',').filter(|n| !n.is_empty()) {
        match name.parse::<T>() {
            Ok(v) => out.push(v),
            Err(e) => {
                eprintln!("--{flag}: {e}");
                std::process::exit(2);
            }
        }
    }
    Some(out)
}

/// Parse a scalar `--flag=value` via `FromStr`, exiting with a
/// diagnostic on a bad value.
fn parse_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let prefix = format!("--{flag}=");
    let raw = args.iter().find_map(|a| a.strip_prefix(&prefix))?;
    match raw.parse::<T>() {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("--{flag}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `bench-diff OLD.json NEW.json [--band=0.25]` is a subcommand, not
    // a scenario — handle it before scenario-name validation.
    if args.first().map(String::as_str) == Some("bench-diff") {
        let band: f64 = parse_value(&args, "band").unwrap_or(0.25);
        let files: Vec<&String> = args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();
        if files.len() != 2 {
            eprintln!("usage: experiments bench-diff OLD.json NEW.json [--band=0.25]");
            std::process::exit(2);
        }
        std::process::exit(bench_diff(files[0], files[1], band));
    }
    let backends: Vec<IndexBackend> =
        parse_list(&args, "backends").unwrap_or_else(|| IndexBackend::ALL.to_vec());
    let methods: Vec<WalkthroughMethod> =
        parse_list(&args, "methods").unwrap_or_else(|| WalkthroughMethod::ALL.to_vec());
    let threads: usize = parse_value(&args, "threads").unwrap_or(4);
    let shards: usize = parse_value(&args, "shards").unwrap_or(threads.max(2));
    // Scenarios are selectable positionally (`experiments throughput`) or
    // via `--scenario=name[,name…]`. Unknown names are an error, not a
    // silent no-op — a typo like `--scenario=hotpth` used to run nothing
    // and exit 0, which in CI reads as "gate passed".
    const SCENARIOS: [&str; 21] = [
        "e1",
        "e2",
        "e3",
        "e4",
        "e5",
        "e6",
        "e7",
        "throughput",
        "hotpath",
        "ooc",
        "faults",
        "ingest",
        "join",
        "api",
        "serve",
        "load",
        "a1",
        "a2",
        "a3",
        "a4",
        "a5",
    ];
    let mut which: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    which.extend(parse_list::<String>(&args, "scenario").unwrap_or_default());
    for w in &which {
        if !SCENARIOS.contains(&w.as_str()) {
            eprintln!(
                "unknown scenario '{w}'\nknown scenarios: {}\nusage: experiments \
                 [scenario…] [--scenario=name[,name…]] [--flag=value…]",
                SCENARIOS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let run = |name: &str| which.is_empty() || which.iter().any(|w| w == name);

    if run("e1") {
        e1_flat_vs_rtree();
        e1_backend_race(&backends);
    }
    if run("e2") {
        e2_crawl_and_levels();
    }
    if run("e3") {
        e3_candidate_pruning();
    }
    if run("e4") {
        e4_walkthrough(&methods);
    }
    if run("e5") {
        e5_join_comparison();
    }
    if run("e6") {
        e6_scaling();
    }
    if run("e7") || run("throughput") {
        e7_throughput(&backends, shards, threads);
    }
    if run("hotpath") {
        let n: usize = parse_value(&args, "n").unwrap_or(20_000);
        let queries: usize = parse_value(&args, "queries").unwrap_or(256);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        hotpath(&backends, n, queries, shards, &out, strict);
    }
    if run("ooc") {
        let n: usize = parse_value(&args, "n").unwrap_or(20_000);
        let paths: u64 = parse_value(&args, "paths").unwrap_or(6);
        let think: f64 = parse_value(&args, "think").unwrap_or(2.0);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_ooc.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        ooc_bench(n, paths, think, &out, strict);
    }
    if run("faults") {
        let n: usize = parse_value(&args, "n").unwrap_or(20_000);
        let queries: usize = parse_value(&args, "queries").unwrap_or(256);
        let seed: u64 = parse_value(&args, "seed").unwrap_or(0xFA17);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_faults.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        faults_bench(n, queries, seed, &out, strict);
    }
    if run("ingest") {
        let n: usize = parse_value(&args, "n").unwrap_or(20_000);
        let writes: usize = parse_value(&args, "writes").unwrap_or(4_096);
        let readers: usize = parse_value(&args, "readers").unwrap_or(2);
        let seed: u64 = parse_value(&args, "seed").unwrap_or(0x0126_9E57);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_ingest.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        ingest_bench(n, writes, readers, seed, &out, strict);
    }
    if run("join") {
        let n: usize = parse_value(&args, "n").unwrap_or(20_000);
        let eps: f64 = parse_value(&args, "eps").unwrap_or(1.0);
        let fanout: usize = parse_value(&args, "fanout").unwrap_or(16);
        let sweep_min: usize = parse_value(&args, "bucket-sweep-min").unwrap_or(32);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_touch.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        join_bench(n, eps, fanout, sweep_min, threads, &out, strict);
    }
    if run("api") {
        // Deliberately small defaults: the scenario races the *API layer*
        // (materialization, post-filtering, per-query allocation) on
        // selective queries, so the per-query fixed costs must be visible
        // over the shared traversal work. Use --n/--half for scaling runs.
        let n: usize = parse_value(&args, "n").unwrap_or(2_000);
        let queries: usize = parse_value(&args, "queries").unwrap_or(512);
        let half: f64 = parse_value(&args, "half").unwrap_or(5.0);
        let cap: usize = parse_value(&args, "cap").unwrap_or(32);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_api.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        api_bench(&backends, n, queries, half, cap, shards, &out, strict);
    }
    if run("serve") {
        let n: usize = parse_value(&args, "n").unwrap_or(2_000);
        let clients: usize = parse_value(&args, "clients").unwrap_or(4);
        let half: f64 = parse_value(&args, "half").unwrap_or(10.0);
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_serve.json".to_string());
        let strict = args.iter().any(|a| a == "--strict");
        serve_bench(n, clients, half, &out, strict);
    }
    // `load` needs an external server, so it never rides the run-all
    // default — only an explicit request selects it.
    if which.iter().any(|w| w == "load") {
        let Some(addr) = parse_value::<String>(&args, "addr") else {
            eprintln!(
                "load: --addr=HOST:PORT is required (start one with \
                 `cargo run --release -p neurospatial-server`)"
            );
            std::process::exit(2);
        };
        let spec = LoadSpec {
            neurons: parse_value(&args, "neurons").unwrap_or(40),
            seed: parse_value(&args, "seed").unwrap_or(7),
            requests: parse_value(&args, "n").unwrap_or(2_000),
            clients: parse_value(&args, "clients").unwrap_or(4),
            rate: parse_value(&args, "rate").unwrap_or(1_000.0),
            half: parse_value(&args, "half").unwrap_or(10.0),
        };
        let out =
            parse_value::<String>(&args, "out").unwrap_or_else(|| "BENCH_load.json".to_string());
        load_bench(&addr, &spec, &out);
    }
    if run("a1") {
        a1_flat_packing();
    }
    if run("a2") {
        a2_touch_fanout();
    }
    if run("a3") {
        a3_think_time();
    }
    if run("a4") {
        a4_buffer_size();
    }
    if run("a5") {
        a5_markov_warmup();
    }
}

/// E1 (demo Figures 2+3): range-query statistics, FLAT vs STR-packed and
/// dynamically built R-Trees, across densities and query sizes.
///
/// Series: pages/nodes read, simulated I/O ms (random/sequential cost
/// model), wall time, per result sizes.
fn e1_flat_vs_rtree() {
    println!("\n== E1 — FLAT vs R-Tree range queries (Figures 2+3) ==\n");
    let mut t = Table::new([
        "neurons",
        "segments",
        "query",
        "avg result",
        "flat reads",
        "rtree reads",
        "dyn reads",
        "flat io ms",
        "rtree io ms",
        "flat µs",
        "rtree µs",
    ]);

    for &neurons in &[10u32, 25, 50] {
        let circuit = dense_circuit(neurons, 1);
        let segments = circuit.segments().to_vec();
        let flat =
            FlatIndex::build(segments.clone(), FlatBuildParams::default().with_page_capacity(64));
        let packed = RTree::bulk_load(segments.clone(), RTreeParams::with_max_entries(64));
        let mut dynamic = RTree::new(RTreeParams::with_max_entries(64));
        for s in &segments {
            dynamic.insert(*s);
        }

        for &half in &[10.0f64, 30.0] {
            let w = standard_workload(&circuit, 40, half);
            let n = w.queries.len() as f64;
            let (mut results, mut f_reads, mut r_reads, mut d_reads) = (0u64, 0u64, 0u64, 0u64);
            let (mut f_us, mut r_us) = (0.0f64, 0.0f64);
            // Simulated disks: FLAT pages are Hilbert-contiguous, R-Tree
            // nodes live wherever the arena put them.
            let f_disk = DiskSim::new(u64::MAX, CostModel::default());
            let r_disk = DiskSim::new(u64::MAX, CostModel::default());
            for q in &w.queries {
                let t0 = Instant::now();
                let (hits, fs) = flat.range_query_with(q, |acc| {
                    if let neurospatial::flat::PageAccess::Data(p) = acc {
                        f_disk.read(PageId(p as u64)).expect("sim disk");
                    }
                });
                f_us += t0.elapsed().as_secs_f64() * 1e6;
                let t1 = Instant::now();
                let (_, rs) = packed.range_query_with(q, |node, _| {
                    r_disk.read(PageId(node as u64)).expect("sim disk");
                });
                r_us += t1.elapsed().as_secs_f64() * 1e6;
                let (_, ds) = dynamic.range_query(q);
                results += hits.len() as u64;
                f_reads += fs.pages_read + fs.seed_nodes_read;
                r_reads += rs.nodes_visited();
                d_reads += ds.nodes_visited();
            }
            t.row([
                neurons.to_string(),
                segments.len().to_string(),
                format!("{:.0}³", half * 2.0),
                f1(results as f64 / n),
                f1(f_reads as f64 / n),
                f1(r_reads as f64 / n),
                f1(d_reads as f64 / n),
                f2(f_disk.stats().total_cost_ms / n),
                f2(r_disk.stats().total_cost_ms / n),
                f1(f_us / n),
                f1(r_us / n),
            ]);
        }
    }
    t.print();
    println!("\nshape check: FLAT I/O cost grows with the result size only; the R-Tree");
    println!("(especially the dynamic one) pays extra node reads as density grows.");
}

/// E1b: the same race run through the pluggable `SpatialIndex` trait —
/// one code path, backends selected by value or CLI name. Unified
/// `QueryStats` makes the cost columns directly comparable.
fn e1_backend_race(backends: &[IndexBackend]) {
    println!("\n== E1b — backend race through the SpatialIndex trait ==\n");
    let params = IndexParams::with_page_capacity(64);
    let mut t = Table::new([
        "backend",
        "build ms",
        "memory MiB",
        "avg reads",
        "avg tested",
        "avg results",
        "avg µs/query",
    ]);
    let circuit = dense_circuit(25, 1);
    let w = standard_workload(&circuit, 40, 20.0);
    let n = w.queries.len() as f64;
    for backend in backends {
        let t0 = Instant::now();
        let index = backend.build(circuit.segments().to_vec(), &params);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (mut reads, mut tested, mut results) = (0u64, 0u64, 0u64);
        let mut buf = Vec::new();
        let t1 = Instant::now();
        for q in &w.queries {
            buf.clear();
            let s = index.range_query_into(q, &mut buf);
            reads += s.nodes_read;
            tested += s.objects_tested;
            results += s.results;
        }
        let us = t1.elapsed().as_secs_f64() * 1e6 / n;
        t.row([
            backend.to_string(),
            f1(build_ms),
            f2(index.memory_bytes() as f64 / (1024.0 * 1024.0)),
            f1(reads as f64 / n),
            f1(tested as f64 / n),
            f1(results as f64 / n),
            f1(us),
        ]);
    }
    t.print();
    println!("\nshape check: identical result counts on every backend (the equivalence");
    println!("contract); FLAT's reads track the result size, the R-Tree family's grow");
    println!("with overlap, the R+-Tree trades memory for overlap-free reads.");
}

/// E2 (demo Figure 4): how the two executors traverse — FLAT's crawl
/// visits exactly the pages intersecting the query, while the R-Tree
/// reads more nodes per level as overlap accumulates.
fn e2_crawl_and_levels() {
    println!("\n== E2 — crawl order & node accesses per level (Figure 4) ==\n");
    let circuit = dense_circuit(50, 1);
    let segments = circuit.segments().to_vec();
    let flat =
        FlatIndex::build(segments.clone(), FlatBuildParams::default().with_page_capacity(64));
    let packed = RTree::bulk_load(segments.clone(), RTreeParams::with_max_entries(64));
    let mut dynamic = RTree::new(RTreeParams::with_max_entries(64));
    for s in &segments {
        dynamic.insert(*s);
    }

    let w = standard_workload(&circuit, 30, 25.0);
    let n = w.queries.len() as f64;
    let mut flat_agg = (0u64, 0u64, 0u64, 0u64); // pages, rejected links, reseeds, seed nodes
    let mut packed_levels: Vec<f64> = Vec::new();
    let mut dynamic_levels: Vec<f64> = Vec::new();
    for q in &w.queries {
        let (_, fs) = flat.range_query(q);
        flat_agg.0 += fs.pages_read;
        flat_agg.1 += fs.links_rejected;
        flat_agg.2 += fs.reseeds;
        flat_agg.3 += fs.seed_nodes_read;
        let (_, ps) = packed.range_query(q);
        for (l, c) in ps.nodes_per_level.iter().enumerate() {
            if packed_levels.len() <= l {
                packed_levels.resize(l + 1, 0.0);
            }
            packed_levels[l] += *c as f64;
        }
        let (_, ds) = dynamic.range_query(q);
        for (l, c) in ds.nodes_per_level.iter().enumerate() {
            if dynamic_levels.len() <= l {
                dynamic_levels.resize(l + 1, 0.0);
            }
            dynamic_levels[l] += *c as f64;
        }
    }

    println!(
        "FLAT  (avg/query): {} data pages, {} links examined-but-rejected,",
        f1(flat_agg.0 as f64 / n),
        f1(flat_agg.1 as f64 / n)
    );
    println!(
        "                   {} seed-node reads, {} re-seeds\n",
        f1(flat_agg.3 as f64 / n),
        f2(flat_agg.2 as f64 / n)
    );

    let mut t = Table::new(["tree", "level 0 (root)", "level 1", "level 2", "leaf overlap vol"]);
    let fmt_levels = |ls: &[f64]| -> [String; 3] {
        let mut out = [String::from("-"), String::from("-"), String::from("-")];
        for (i, v) in ls.iter().take(3).enumerate() {
            out[i] = f1(*v / n);
        }
        out
    };
    let p = fmt_levels(&packed_levels);
    t.row([
        "STR-packed".to_string(),
        p[0].clone(),
        p[1].clone(),
        p[2].clone(),
        f1(packed.total_leaf_volume()),
    ]);
    let d = fmt_levels(&dynamic_levels);
    t.row([
        "dynamic (quadratic)".to_string(),
        d[0].clone(),
        d[1].clone(),
        d[2].clone(),
        f1(dynamic.total_leaf_volume()),
    ]);
    t.print();

    // The R+-Tree comparison the paper makes in §2: overlap-free queries
    // bought with replication ("increases the index size considerably").
    let rplus = RPlusTree::build(segments.clone(), 64);
    let mut rplus_reads = 0u64;
    for q in &w.queries {
        let (hits, rs) = rplus.range_query(q);
        let (flat_hits, _) = flat.range_query(q);
        assert_eq!(hits.len(), flat_hits.len(), "R+ must agree with FLAT");
        rplus_reads += rs.nodes_visited();
    }
    println!(
        "\nR+-Tree: {} node reads/query, replication factor {:.2} ({} entries for {} objects)",
        f1(rplus_reads as f64 / n),
        rplus.replication_factor(),
        rplus.stored_entries(),
        segments.len()
    );
    println!("\nshape check: the dynamic tree reads more nodes on the upper levels than");
    println!("the packed tree (overlap); FLAT re-seeds ≈ 0 on this dense model; the");
    println!("R+-Tree avoids overlap but pays the paper's 'considerably' larger index.");
}

/// E3 (demo Figure 5): the candidate set shrinks as the walkthrough
/// progresses, reliably identifying the followed structure.
fn e3_candidate_pruning() {
    println!("\n== E3 — SCOUT candidate-set pruning (Figure 5) ==\n");
    let circuit = jagged_circuit(20, 5);
    let db = NeuroDb::from_circuit(&circuit);
    let paths = walkthrough_paths(&circuit, 8);

    let mut t = Table::new(["path", "steps", "candidates per step (q0, q1, …)", "final"]);
    let mut identified = 0;
    // Candidate pruning inspects FLAT's crawl order, so go through the
    // paged index rather than the backend-agnostic facade.
    let flat = db.flat_index().expect("default backend is FLAT");
    for (i, path) in paths.iter().enumerate() {
        let mut scout = ScoutPrefetcher::default();
        let mut history = Vec::new();
        for q in &path.queries {
            history.push(q.center());
            let (result, stats) = flat.range_query(q);
            let ctx = PrefetchContext {
                query: q,
                result: &result,
                history: &history,
                pages_read: &stats.crawl_order,
            };
            let _ = scout.plan(&ctx);
        }
        let hist = scout.candidate_history();
        let series: Vec<String> = hist.iter().take(10).map(|c| c.to_string()).collect();
        let final_c = *hist.last().unwrap_or(&0);
        if final_c <= 2 {
            identified += 1;
        }
        t.row([
            format!("{i}"),
            path.queries.len().to_string(),
            series.join(" "),
            final_c.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nshape check: candidate counts shrink along the sequence; followed structure\nidentified (≤2 candidates) on {identified}/{} paths.",
        paths.len()
    );
}

/// E4 (demo Figure 6): walkthrough statistics per prefetching method —
/// prefetched / correctly prefetched / fetched on demand, stall time and
/// speedup. Paper claim: SCOUT speeds up query sequences by up to 15×.
fn e4_walkthrough(methods: &[WalkthroughMethod]) {
    println!("\n== E4 — SCOUT walkthrough speedup (Figure 6) ==\n");
    for &(neurons, label) in &[(12u32, "small"), (30, "medium")] {
        let circuit = jagged_circuit(neurons, 9);
        let session = ExplorationSession::new(circuit.segments().to_vec(), walkthrough_config());
        let paths = walkthrough_paths(&circuit, 6);
        println!(
            "circuit {label}: {} segments, {} paths, {} total steps",
            circuit.segments().len(),
            paths.len(),
            paths.iter().map(|p| p.queries.len()).sum::<usize>()
        );

        let mut t = Table::new([
            "method",
            "stall ms",
            "demand miss",
            "demand hit",
            "prefetched",
            "useful",
            "precision",
            "speedup",
        ]);
        // The speedup column is always relative to the no-prefetch
        // baseline, whether or not "none" is among the selected methods.
        let baseline_stall: f64 = paths
            .iter()
            .map(|p| {
                let mut pf = WalkthroughMethod::None.prefetcher();
                session.run(p, pf.as_mut()).total_stall_ms
            })
            .sum();
        for &m in methods {
            let mut agg = SessionStats::default();
            for p in &paths {
                let mut pf = m.prefetcher();
                let s = session.run(p, pf.as_mut());
                agg.total_stall_ms += s.total_stall_ms;
                agg.total_demand_misses += s.total_demand_misses;
                agg.total_demand_hits += s.total_demand_hits;
                agg.total_prefetched += s.total_prefetched;
                agg.useful_prefetched += s.useful_prefetched;
            }
            let speedup = if agg.total_stall_ms > 0.0 {
                baseline_stall / agg.total_stall_ms
            } else {
                f64::INFINITY
            };
            t.row([
                m.to_string(),
                f1(agg.total_stall_ms),
                agg.total_demand_misses.to_string(),
                agg.total_demand_hits.to_string(),
                agg.total_prefetched.to_string(),
                agg.useful_prefetched.to_string(),
                format!("{:.0}%", agg.prefetch_precision() * 100.0),
                format!("{speedup:.1}x"),
            ]);
        }
        t.print();
        println!();
    }
    println!("shape check: scout > extrapolation > hilbert > markov ≈ none in speedup;");
    println!("markov is cold on first traversals of a fresh model — exactly the paper's");
    println!("argument against history-based prefetching (§3). The paper reports up to");
    println!("15x for SCOUT on (much larger) BBP walkthroughs.");
}

/// E5 (demo Figure 7): the join race — time, memory, comparisons.
/// Paper claims: TOUCH ≈ 10× faster than PBSM, ≈ 100× faster than S3 /
/// sweep-based joins at an equally small memory footprint.
fn e5_join_comparison() {
    println!("\n== E5 — TOUCH vs join baselines (Figure 7) ==\n");
    // The paper's regime is millions of segments on a supercomputer; we
    // scale down to ~20k-90k segments per side, which already separates
    // the algorithms cleanly. The O(n²) nested loop is only raced at the
    // smallest size.
    for &(neurons, eps, with_nested) in
        &[(100u32, 1.0f64, true), (400, 1.0, false), (400, 3.0, false)]
    {
        let circuit = dense_circuit(neurons, 3);
        let (a, b) = circuit.split_populations();
        println!("|A| = {}, |B| = {}, ε = {eps}", a.len(), b.len());

        let mut t = Table::new([
            "method",
            "total ms",
            "build ms",
            "probe ms",
            "comparisons",
            "aux MiB",
            "pairs",
            "vs touch",
        ]);
        let touch_time = TouchJoin::default().join(&a, &b, eps).stats.total_ms;
        let mut run = |name: &'static str, r: JoinResult| {
            t.row([
                name.to_string(),
                f1(r.stats.total_ms),
                f1(r.stats.build_ms),
                f1(r.stats.probe_ms),
                r.stats.total_comparisons().to_string(),
                f2(r.stats.aux_memory_bytes as f64 / (1024.0 * 1024.0)),
                r.pairs.len().to_string(),
                format!("{:.1}x", r.stats.total_ms / touch_time.max(1e-9)),
            ]);
        };
        run("touch", TouchJoin::default().join(&a, &b, eps));
        run("touch(4thr)", TouchJoin::parallel(4).join(&a, &b, eps));
        run("pbsm", PbsmJoin::default().join(&a, &b, eps));
        run("s3", S3Join::default().join(&a, &b, eps));
        run("plane-sweep", PlaneSweepJoin.join(&a, &b, eps));
        if with_nested {
            run("nested-loop", NestedLoopJoin.join(&a, &b, eps));
        }
        t.print();
        println!();
    }
    println!("shape check: touch fastest; pbsm within ~1 order; s3/sweep/nested slower by");
    println!("1-2+ orders on the dense configuration, pbsm pays the largest aux memory.");
}

/// E6 (§1 narrative): scaling with model size — build and query/join cost
/// as the circuit grows ("models of one million neurons or bigger can be
/// built and simulated today").
fn e6_scaling() {
    println!("\n== E6 — scaling with model size (§1) ==\n");
    let mut t = Table::new([
        "neurons",
        "segments",
        "flat build ms",
        "flat query µs",
        "rtree query µs",
        "touch join ms",
        "walk stall ms",
    ]);
    for &neurons in &[10u32, 20, 40, 80] {
        let circuit = dense_circuit(neurons, 11);
        let segments = circuit.segments().to_vec();

        let t0 = Instant::now();
        let flat =
            FlatIndex::build(segments.clone(), FlatBuildParams::default().with_page_capacity(64));
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let packed = RTree::bulk_load(segments.clone(), RTreeParams::with_max_entries(64));

        let w = standard_workload(&circuit, 25, 20.0);
        let t1 = Instant::now();
        for q in &w.queries {
            let _ = flat.range_query(q);
        }
        let fq = t1.elapsed().as_secs_f64() * 1e6 / w.queries.len() as f64;
        let t2 = Instant::now();
        for q in &w.queries {
            let _ = packed.range_query(q);
        }
        let rq = t2.elapsed().as_secs_f64() * 1e6 / w.queries.len() as f64;

        let (pa, pb) = circuit.split_populations();
        let join_ms = TouchJoin::default().join(&pa, &pb, 1.5).stats.total_ms;

        let session = ExplorationSession::new(segments.clone(), walkthrough_config());
        // Dense circuits have short branches; accept shorter paths here —
        // this column tracks scaling, not prefetch quality.
        let paths: Vec<NavigationPath> = (0..32)
            .filter_map(|seed| NavigationPath::along_random_branch(&circuit, seed, 15.0, 18.0))
            .filter(|p| p.queries.len() >= 4)
            .take(3)
            .collect();
        let stall = paths
            .iter()
            .map(|p| {
                let mut s = ScoutPrefetcher::default();
                session.run(p, &mut s).total_stall_ms
            })
            .sum::<f64>();

        t.row([
            neurons.to_string(),
            segments.len().to_string(),
            f1(build_ms),
            f1(fq),
            f1(rq),
            f1(join_ms),
            f1(stall),
        ]);
    }
    t.print();
    println!("\nshape check: FLAT query cost tracks the result size (which grows with");
    println!("density), not the dataset size; build and join scale near-linearly.");
}

/// E7 — sharded-vs-monolithic throughput race. For every backend, the
/// same batched query workload runs through the monolithic index and
/// through a [`ShardedIndex`] with `--shards` Hilbert partitions and
/// `--threads` workers; equal result counts are asserted (the
/// equivalence contract), wall time and queries/second are reported.
fn e7_throughput(backends: &[IndexBackend], shards: usize, threads: usize) {
    println!("\n== E7 — sharded executor throughput ({shards} shards, {threads} threads) ==\n");
    let circuit = dense_circuit(40, 7);
    let w = standard_workload(&circuit, 512, 15.0);
    println!(
        "{} segments, batch of {} range queries (data-centred, 30³), best of 3 runs\n",
        circuit.segments().len(),
        w.queries.len()
    );
    let mono_params = IndexParams::with_page_capacity(64);
    let shard_params = mono_params.sharded(shards).threaded(threads);
    /// Best-of-3 wall time in ms (the batch is deterministic, so the
    /// minimum is the least-perturbed measurement).
    fn best_of_3(mut f: impl FnMut()) -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    }

    let mut t = Table::new([
        "backend",
        "mono build ms",
        "shard build ms",
        "mono batch ms",
        "shard batch ms",
        "speedup",
        "mono q/s",
        "shard q/s",
    ]);
    for backend in backends {
        let t0 = Instant::now();
        let mono = backend.build(circuit.segments().to_vec(), &mono_params);
        let mono_build = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let sharded = backend.build_sharded(circuit.segments().to_vec(), &shard_params);
        let shard_build = t1.elapsed().as_secs_f64() * 1e3;

        // Warm-up pass (also checks the equivalence contract end to end),
        // then the timed passes.
        let warm_m = mono.range_query_many(&w.queries);
        let warm_s = sharded.range_query_many(&w.queries);
        for (m, s) in warm_m.iter().zip(&warm_s) {
            assert_eq!(m.sorted_ids(), s.sorted_ids(), "{backend} sharded answers diverge");
        }
        let mono_ms = best_of_3(|| {
            let _ = mono.range_query_many(&w.queries);
        });
        let shard_ms = best_of_3(|| {
            let _ = sharded.range_query_many(&w.queries);
        });

        let n = w.queries.len() as f64;
        t.row([
            backend.to_string(),
            f1(mono_build),
            f1(shard_build),
            f1(mono_ms),
            f1(shard_ms),
            format!("{:.2}x", mono_ms / shard_ms.max(1e-9)),
            f1(n / (mono_ms / 1e3).max(1e-9)),
            f1(n / (shard_ms / 1e3).max(1e-9)),
        ]);
    }
    t.print();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n(executor capped at {cores} hardware thread(s) on this machine)");
    println!("\nshape check: shard-bounds pruning keeps batched sharded execution at or");
    println!("above monolithic throughput even on one core; with multiple cores the batch");
    println!("fans out across workers and throughput scales with min(threads, cores) —");
    println!("the acceptance bar is sharded ≥ monolithic on batched queries at 4 threads.");
}

/// Hotpath — the old-vs-new query-path race behind the cache-conscious,
/// allocation-free refactor. For every backend (monolithic and sharded)
/// the same batched range-query workload runs twice:
///
/// * **alloc path**: `range_query` per query — fresh result vectors,
///   fresh traversal stacks/queues/bitsets, per-level stats vectors;
/// * **scratch path**: `range_query_into_scratch` with one reused
///   [`QueryScratch`] and result buffer — SoA-lane MBR tests on the tree
///   backends, epoch-stamped visited marks, zero steady-state
///   allocations.
///
/// Result sets and statistics are asserted byte-identical during the
/// warm-up pass; allocation counts come from the binary's counting
/// global allocator; everything is written machine-readably to
/// `BENCH_hotpath.json` — the first point of the perf trajectory.
///
/// Sharded configurations run with 1 worker thread here on purpose:
/// the scenario measures the per-query hot path, and single-threaded
/// execution keeps the allocation accounting attributable to it.
fn hotpath(
    backends: &[IndexBackend],
    n: usize,
    queries: usize,
    shards: usize,
    out_path: &str,
    strict: bool,
) {
    println!("\n== HOTPATH — allocation-free query paths vs the allocating paths ==\n");
    let segments = sized_segments(n, 42);
    let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
    let half = 15.0;
    let w = RangeQueryWorkload::generate(
        1000,
        &bounds,
        queries,
        half,
        QueryPlacement::DataCentered,
        Some(&segments),
    );
    println!(
        "{} segments, batch of {} range queries ({:.0}³, data-centred), best of 3 runs",
        segments.len(),
        w.queries.len(),
        half * 2.0
    );
    println!("sharded configurations: {shards} shards, 1 worker thread\n");

    /// Best-of-3 wall time in ns/query plus the allocation count of one
    /// steady-state pass (the last timed one — every buffer is warm).
    fn race(queries: usize, mut pass: impl FnMut()) -> (f64, f64) {
        let mut best_ms = f64::INFINITY;
        let mut allocs = 0u64;
        for _ in 0..3 {
            let a0 = allocations();
            let t = Instant::now();
            pass();
            best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
            allocs = allocations() - a0;
        }
        (best_ms * 1e6 / queries as f64, allocs as f64 / queries as f64)
    }

    let mut t = Table::new([
        "backend",
        "build ms",
        "alloc ns/q",
        "scratch ns/q",
        "speedup",
        "allocs/q (alloc)",
        "allocs/q (scratch)",
        "nodes/q",
        "results/q",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut fast_enough = 0usize;
    let mut zero_alloc = 0usize;
    let configs: Vec<(String, bool)> = backends
        .iter()
        .flat_map(|b| [(b.name().to_string(), false), (b.sharded_name(), true)])
        .collect();

    for (name, sharded) in &configs {
        let params = IndexParams::with_page_capacity(64).sharded(shards).threaded(1);
        let backend: IndexBackend = name.strip_prefix("sharded:").unwrap_or(name).parse().unwrap();
        let t0 = Instant::now();
        let idx = if *sharded {
            backend.build_sharded(segments.clone(), &params)
        } else {
            backend.build(segments.clone(), &params)
        };
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Warm-up pass: grows every scratch buffer to its steady-state
        // size and asserts the equivalence contract — the scratch path
        // must return byte-identical results *and* statistics.
        let mut scratch = QueryScratch::new();
        let mut buf: Vec<NeuronSegment> = Vec::new();
        let (mut nodes, mut results) = (0u64, 0u64);
        for q in &w.queries {
            let reference = idx.range_query(q);
            buf.clear();
            let stats = idx.range_query_into_scratch(q, &mut scratch, &mut buf);
            assert_eq!(stats, reference.stats, "{name}: scratch stats diverge at {q}");
            assert!(
                buf.iter().map(|s| s.id).eq(reference.segments.iter().map(|s| s.id)),
                "{name}: scratch results diverge at {q}"
            );
            nodes += stats.nodes_read;
            results += stats.results;
        }

        let (alloc_ns, alloc_allocs) = race(w.queries.len(), || {
            for q in &w.queries {
                let _ = idx.range_query(q);
            }
        });
        let (scratch_ns, scratch_allocs) = race(w.queries.len(), || {
            for q in &w.queries {
                buf.clear();
                let _ = idx.range_query_into_scratch(q, &mut scratch, &mut buf);
            }
        });

        let speedup = alloc_ns / scratch_ns.max(1e-9);
        if speedup >= 1.3 {
            fast_enough += 1;
        }
        if scratch_allocs == 0.0 {
            zero_alloc += 1;
        }
        let nq = w.queries.len() as f64;
        t.row([
            name.clone(),
            f1(build_ms),
            f1(alloc_ns),
            f1(scratch_ns),
            format!("{speedup:.2}x"),
            f2(alloc_allocs),
            f2(scratch_allocs),
            f1(nodes as f64 / nq),
            f1(results as f64 / nq),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"backend\": {:?}, \"sharded\": {}, \"build_ms\": {:.3}, ",
                "\"alloc_path_ns_per_query\": {:.1}, \"scratch_path_ns_per_query\": {:.1}, ",
                "\"speedup\": {:.3}, \"allocs_per_query_alloc_path\": {:.2}, ",
                "\"allocs_per_query_scratch_path\": {:.2}, \"nodes_read_per_query\": {:.2}, ",
                "\"results_per_query\": {:.2}}}"
            ),
            name,
            sharded,
            build_ms,
            alloc_ns,
            scratch_ns,
            speedup,
            alloc_allocs,
            scratch_allocs,
            nodes as f64 / nq,
            results as f64 / nq,
        ));
    }
    t.print();

    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"hotpath\",\n  \"segments\": {},\n  \"queries\": {},\n",
            "  \"query_half_extent\": {:.1},\n  \"shards\": {},\n  \"threads\": 1,\n",
            "  \"backends\": [\n{}\n  ]\n}}\n"
        ),
        segments.len(),
        w.queries.len(),
        half,
        shards,
        json_rows.join(",\n")
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");
    println!(
        "\nshape check: scratch paths do 0 steady-state allocs/query ({zero_alloc}/{} configs) \
         and beat the\nallocating paths by >= 1.3x on {fast_enough}/{} configs (acceptance: \
         0 allocs everywhere, >= 1.3x on >= 2).",
        configs.len(),
        configs.len()
    );
    // Under --strict (the CI bench-smoke gate) the acceptance bar is
    // enforced, not just printed: a reintroduced per-query allocation or
    // a broad perf regression fails the job instead of shipping silently.
    // The 0-alloc half is deterministic; the speedup half is held at the
    // issue's floor (>= 1.3x on at least two configurations), which is
    // far below the measured margin, so timing noise cannot flake it.
    if strict && (zero_alloc < configs.len() || fast_enough < 2) {
        eprintln!(
            "hotpath --strict: acceptance bar FAILED \
             (zero-alloc {zero_alloc}/{}, >=1.3x on {fast_enough}, need all and >= 2)",
            configs.len()
        );
        std::process::exit(1);
    }
}

/// OOC — out-of-core FLAT on the real pager: the spill-beyond-RAM run.
///
/// One FLAT index is written to a checksummed page file, then the same
/// branch-following walkthroughs replay through a bounded frame pool at
/// 100 %, 50 % and 10 % of the dataset resident, with background
/// prefetching off (`none`, 0 workers) and on (`scout`, 2 workers).
/// Each configuration runs on a freshly opened index — a cold pool —
/// best of 3 passes by stall time. `stall ms` is real wall-clock time
/// the crawl spent waiting on demand page reads (not a simulated cost);
/// `queries/s` divides the steps by the time inside the queries alone,
/// think time excluded. Every step's result set is asserted identical
/// to the in-memory index.
///
/// Everything is written machine-readably to `BENCH_ooc.json`; under
/// `--strict` the acceptance bar — exact results everywhere, and
/// prefetch-on stall <= prefetch-off stall at the 10 % budget — becomes
/// the exit code.
fn ooc_bench(n: usize, path_count: u64, think_ms: f64, out_path: &str, strict: bool) {
    use neurospatial::flat::FlatScratch;
    use neurospatial::scout::ooc::{frame_budget_for, write_flat_index};
    use neurospatial::scout::{OocConfig, OocFlatIndex};

    println!("\n== OOC — FLAT beyond RAM: walkthroughs on the real pager ==\n");

    // Grow a jagged circuit to >= n segments; the circuit drives path
    // generation, the indexed segment list is truncated to exactly n.
    let mut neurons = 4u32;
    let circuit = loop {
        let c = jagged_circuit(neurons, 9);
        if c.segments().len() >= n || neurons >= 4096 {
            break c;
        }
        neurons *= 2;
    };
    let mut segments = circuit.segments().to_vec();
    segments.truncate(n);
    let mem = FlatIndex::build(segments, FlatBuildParams::default().with_page_capacity(64));
    let pages = mem.page_count();

    let file = std::env::temp_dir()
        .join(format!("neurospatial-bench-ooc-{}.flatpages", std::process::id()));
    write_flat_index(&mem, &file).expect("write page file");
    let mib = std::fs::metadata(&file).map(|m| m.len()).unwrap_or(0) as f64 / (1024.0 * 1024.0);

    let paths = walkthrough_paths(&circuit, path_count);
    let steps: usize = paths.iter().map(|p| p.queries.len()).sum();
    println!(
        "{} segments in {pages} pages ({mib:.2} MiB on disk); {} walkthrough paths, \
         {steps} steps, {think_ms:.1} ms think time, best of 3 cold-pool passes",
        mem.len(),
        paths.len()
    );

    // Ground truth for every step, from the in-memory index.
    let mut mem_scratch = FlatScratch::default();
    let truth: Vec<Vec<u64>> = paths
        .iter()
        .flat_map(|p| p.queries.iter())
        .map(|q| {
            let mut ids = Vec::new();
            mem.range_query_scratch(q, &mut mem_scratch, |_| {}, |s| ids.push(s.id));
            ids
        })
        .collect();

    struct Row {
        pct: usize,
        frames: usize,
        prefetch: bool,
        policy: &'static str,
        stall_ms: f64,
        qps: f64,
        demand_misses: u64,
        demand_hits: u64,
        prefetched: u64,
        useful: u64,
        evictions: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut exact = true;

    for &pct in &[100usize, 50, 10] {
        let frames = frame_budget_for(pages, pct as u32);
        for prefetch in [false, true] {
            let (policy, method, workers) = if prefetch {
                ("scout", WalkthroughMethod::Scout, 2)
            } else {
                ("none", WalkthroughMethod::None, 0)
            };
            let mut best: Option<Row> = None;
            for pass in 0..3 {
                // A fresh open per pass: cold pool, cold counters.
                let cfg =
                    OocConfig::default().with_frame_budget(frames).with_prefetch_workers(workers);
                let ooc = OocFlatIndex::open(&file, cfg).expect("reopen page file");
                let (mut stall, mut misses, mut hits, mut prefetched) = (0.0f64, 0u64, 0u64, 0u64);
                let mut query_s = 0.0f64;
                let mut step_idx = 0usize;
                for p in &paths {
                    let mut cursor = ooc.cursor(method.prefetcher());
                    for q in &p.queries {
                        let t = Instant::now();
                        let trace = cursor.step(q).expect("validated page file");
                        query_s += t.elapsed().as_secs_f64();
                        stall += trace.stall_ms;
                        misses += trace.demand_misses;
                        hits += trace.demand_hits;
                        prefetched += trace.prefetched;
                        if pass == 0 {
                            let got: Vec<u64> = cursor.last_result().iter().map(|s| s.id).collect();
                            if got != truth[step_idx] {
                                eprintln!(
                                    "ooc: {pct}% budget prefetch={prefetch}: step {step_idx} \
                                     diverges from the in-memory index"
                                );
                                exact = false;
                            }
                        }
                        step_idx += 1;
                        if think_ms > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(think_ms / 1e3));
                        }
                    }
                }
                let fs = ooc.pool().stats();
                let row = Row {
                    pct,
                    frames,
                    prefetch,
                    policy,
                    stall_ms: stall,
                    qps: steps as f64 / query_s.max(1e-9),
                    demand_misses: misses,
                    demand_hits: hits,
                    prefetched,
                    useful: fs.prefetch_hits,
                    evictions: fs.evictions,
                };
                if best.as_ref().is_none_or(|b| row.stall_ms < b.stall_ms) {
                    best = Some(row);
                }
            }
            rows.push(best.expect("three passes ran"));
        }
    }
    std::fs::remove_file(&file).ok();

    let mut t = Table::new([
        "budget",
        "frames",
        "prefetch",
        "stall ms",
        "queries/s",
        "demand miss",
        "demand hit",
        "prefetched",
        "useful",
        "evictions",
    ]);
    for r in &rows {
        t.row([
            format!("{}%", r.pct),
            r.frames.to_string(),
            r.policy.to_string(),
            f2(r.stall_ms),
            f1(r.qps),
            r.demand_misses.to_string(),
            r.demand_hits.to_string(),
            r.prefetched.to_string(),
            r.useful.to_string(),
            r.evictions.to_string(),
        ]);
    }
    t.print();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"budget_pct\": {}, \"frames\": {}, \"prefetch\": {}, ",
                    "\"policy\": {:?}, \"stall_ms\": {:.3}, \"queries_per_sec\": {:.1}, ",
                    "\"demand_misses\": {}, \"demand_hits\": {}, \"prefetched\": {}, ",
                    "\"useful_prefetched\": {}, \"evictions\": {}}}"
                ),
                r.pct,
                r.frames,
                r.prefetch,
                r.policy,
                r.stall_ms,
                r.qps,
                r.demand_misses,
                r.demand_hits,
                r.prefetched,
                r.useful,
                r.evictions,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"ooc\",\n  \"segments\": {},\n  \"pages\": {},\n",
            "  \"page_file_mib\": {:.2},\n  \"paths\": {},\n  \"steps\": {},\n",
            "  \"think_ms\": {:.1},\n  \"exact\": {},\n  \"configs\": [\n{}\n  ]\n}}\n"
        ),
        mem.len(),
        pages,
        mib,
        paths.len(),
        steps,
        think_ms,
        exact,
        json_rows.join(",\n")
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");

    let stall_at = |pct: usize, prefetch: bool| {
        rows.iter()
            .find(|r| r.pct == pct && r.prefetch == prefetch)
            .map_or(f64::NAN, |r| r.stall_ms)
    };
    let (off10, on10) = (stall_at(10, false), stall_at(10, true));
    println!(
        "\nshape check: every step byte-identical to the in-memory index (exact: {exact});\n\
         at the 10% budget prefetching takes stall {off10:.2} ms -> {on10:.2} ms \
         (acceptance: on <= off)."
    );
    // Under --strict (the CI bench-smoke gate) the acceptance bar is
    // enforced, not just printed. Exactness is deterministic. The stall
    // comparison races real background reads against real demand reads,
    // best of 3 cold passes per side; at full size the margin is
    // structural (misses turned into hits). At smoke sizes a 10% budget
    // can be as small as a single step's working set, where the best a
    // prefetcher can do is break even — a quarter-millisecond noise
    // floor keeps scheduler jitter on a tie from flaking the gate,
    // while a real regression (prefetch gone synchronous, demand hits
    // lost) overshoots it by an order of magnitude at any size.
    let slack = (off10 * 0.05).max(0.25);
    if strict && (!exact || on10 > off10 + slack) {
        eprintln!(
            "ooc --strict: acceptance bar FAILED (exact {exact}, stall at 10% budget: \
             prefetch-on {on10:.3} ms vs prefetch-off {off10:.3} ms + {slack:.3} ms noise floor)"
        );
        std::process::exit(1);
    }
}

/// Faults — resilience under seeded transient-I/O storms: range queries
/// on the paged FLAT engine at 0% / 1% / 5% injected fault rates,
/// prefetch off and on, at a frame budget small enough that pages are
/// re-read (and so re-exposed to the schedule) constantly. Measures
/// query p50/p99 latency, queries/s and the retry / quarantine
/// counters, and checks every result against the fault-free run —
/// transient faults must cost retries, never correctness.
///
/// Everything lands in `BENCH_faults.json`. Under `--strict` (the CI
/// bench-smoke gate) the acceptance bar is the exit code: byte-identical
/// recovery in every lane, zero quarantined pages, and a 5% lane that
/// demonstrably exercised the retry path.
fn faults_bench(n: usize, query_count: usize, seed: u64, out_path: &str, strict: bool) {
    use neurospatial::scout::ooc::{frame_budget_for, write_flat_index};
    use neurospatial::scout::{OocConfig, OocFlatIndex, OocScratch};
    use neurospatial::storage::{FaultFile, FaultPlan};
    use std::sync::Arc;

    println!("\n== FAULTS — paged queries under injected transient-I/O storms ==\n");

    let mut neurons = 4u32;
    let circuit = loop {
        let c = jagged_circuit(neurons, 11);
        if c.segments().len() >= n || neurons >= 4096 {
            break c;
        }
        neurons *= 2;
    };
    let mut segments = circuit.segments().to_vec();
    segments.truncate(n);
    let mem = FlatIndex::build(segments, FlatBuildParams::default().with_page_capacity(64));
    let pages = mem.page_count();
    let frames = frame_budget_for(pages, 10);
    let file = std::env::temp_dir()
        .join(format!("neurospatial-bench-faults-{}.flatpages", std::process::id()));
    write_flat_index(&mem, &file).expect("write page file");

    // A seeded query mix spanning the data: every box is derived from
    // the seed, so a red run replays with --seed.
    let mix = |x: u64| {
        let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let frac = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
    let bounds = mem.bounds();
    let boxes: Vec<Aabb> = (0..query_count as u64)
        .map(|i| {
            let (hx, hy, hz, hr) =
                (mix(seed ^ i), mix(seed ^ i ^ 1), mix(seed ^ i ^ 2), mix(seed ^ i ^ 3));
            let at = |f: f64, lo: f64, hi: f64| lo + f * (hi - lo);
            let center = Vec3::new(
                at(frac(hx), bounds.lo.x, bounds.hi.x),
                at(frac(hy), bounds.lo.y, bounds.hi.y),
                at(frac(hz), bounds.lo.z, bounds.hi.z),
            );
            Aabb::cube(center, 2.0 + frac(hr) * 18.0)
        })
        .collect();
    println!(
        "{} segments in {pages} pages, {frames}-frame budget (10%, so queries keep paging); \
         {} seeded query boxes x 3 passes, seed {seed:#x}",
        mem.len(),
        boxes.len()
    );

    // Fault-free ground truth through the same paged engine.
    let truth: Vec<Vec<NeuronSegment>> = {
        let clean = OocFlatIndex::open(&file, OocConfig::default().with_frame_budget(frames))
            .expect("clean open");
        let mut scratch = OocScratch::new();
        boxes
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                clean.range_query_into(q, &mut scratch, &mut out).expect("clean query");
                out
            })
            .collect()
    };

    struct Row {
        permille: u32,
        prefetch: bool,
        p50_ms: f64,
        p99_ms: f64,
        qps: f64,
        retries: u64,
        injected: u64,
        quarantined: u64,
        exact: bool,
    }
    let mut rows: Vec<Row> = Vec::new();

    for &permille in &[0u32, 10, 50] {
        for prefetch in [false, true] {
            let workers = if prefetch { 2 } else { 0 };
            let plan = FaultPlan::new(seed ^ u64::from(permille))
                .with_transient_permille(permille)
                .with_max_consecutive(2);
            assert!(plan.is_transient_only());
            let injected_plan = plan.clone();
            let cfg = OocConfig::default().with_frame_budget(frames).with_prefetch_workers(workers);
            // Keep a handle to the fault layer so its injection counter
            // is readable after the index takes ownership.
            let probe: Arc<std::sync::OnceLock<Arc<FaultFile<neurospatial::storage::PageFile>>>> =
                Arc::new(std::sync::OnceLock::new());
            let probe_in = Arc::clone(&probe);
            let ooc = OocFlatIndex::open_with(&file, cfg, move |f| {
                let faulty = Arc::new(FaultFile::new(f, injected_plan));
                probe_in.set(Arc::clone(&faulty)).ok();
                faulty
            })
            .expect("a transient-only plan survives the validating open");

            let mut scratch = OocScratch::new();
            let mut out = Vec::new();
            let mut lat_ms: Vec<f64> = Vec::with_capacity(boxes.len() * 3);
            let (mut retries, mut query_s, mut exact) = (0u64, 0.0f64, true);
            // Three passes: the tight budget keeps evicting, so pages are
            // re-read — and re-exposed to the fault schedule — every pass.
            for _ in 0..3 {
                for (q, want) in boxes.iter().zip(&truth) {
                    let t = Instant::now();
                    let stats = ooc
                        .range_query_into(q, &mut scratch, &mut out)
                        .expect("transient faults must be retried, not surfaced");
                    let dt = t.elapsed().as_secs_f64();
                    query_s += dt;
                    lat_ms.push(dt * 1e3);
                    retries += stats.io.retries;
                    if &out != want {
                        eprintln!("faults: {permille}permille prefetch={prefetch}: {q} diverges");
                        exact = false;
                    }
                }
            }
            lat_ms.sort_by(f64::total_cmp);
            let pct = |p: f64| lat_ms[((lat_ms.len() - 1) as f64 * p) as usize];
            rows.push(Row {
                permille,
                prefetch,
                p50_ms: pct(0.50),
                p99_ms: pct(0.99),
                qps: lat_ms.len() as f64 / query_s.max(1e-9),
                retries,
                injected: probe.get().map_or(0, |f| f.injected_faults()),
                quarantined: ooc.quarantined_pages().len() as u64,
                exact,
            });
        }
    }
    std::fs::remove_file(&file).ok();

    // ---- WAL write-path fault points --------------------------------
    // The read path above proves queries survive I/O storms; these three
    // drills prove the *write* path holds its durability contract at the
    // nastiest points of the lifecycle. Offsets are in bytes through the
    // fault seam: a fresh build pushes the new file's header append plus
    // the initial checkpoint image through it, so the op stream starts
    // at file_len + header.
    struct WalRow {
        name: &'static str,
        pass: bool,
        recover_ms: f64,
        detail: String,
    }
    let wal_rows: Vec<WalRow> = {
        use neurospatial::storage::wal::WAL_HEADER_BYTES;
        let circuit = CircuitBuilder::new(seed % 8192).neurons(6).build();
        let base_len = circuit.segments().len();
        let fresh = |id: u64, x: f64| NeuronSegment {
            id,
            neuron: 90_000 + id as u32,
            section: 0,
            index_on_section: 0,
            geom: neurospatial::geom::Segment::new(
                Vec3::new(x, 0.0, 0.0),
                Vec3::new(x + 1.0, 0.0, 0.0),
                0.4,
            ),
        };
        let wal_path = |tag: &str| {
            std::env::temp_dir()
                .join(format!("neurospatial-bench-wal-{tag}-{}.wal", std::process::id()))
        };
        // Fault-free run: learn the on-disk size right after build, the
        // base every crash/flip offset is measured from.
        let build_len = {
            let p = wal_path("measure");
            let db = NeuroDb::builder().circuit(&circuit).durable(&p).build().expect("live");
            drop(db);
            let len = std::fs::metadata(&p).expect("wal exists").len();
            std::fs::remove_file(&p).ok();
            len
        };
        let ops_start = build_len + WAL_HEADER_BYTES as u64;
        let mut rows = Vec::new();

        // Drill 1 — torn tail: the log dies 10 bytes into the first
        // batch. The write must error (no ack), and recovery must
        // detect the tear, truncate it, and replay nothing.
        {
            let p = wal_path("torn");
            let plan = FaultPlan::new(seed).with_write_crash_at(ops_start + 10);
            let write_err = {
                let db = NeuroDb::builder()
                    .circuit(&circuit)
                    .durable(&p)
                    .wal_faults(plan)
                    .build()
                    .expect("crash point is past the build");
                db.insert_segment(fresh(700_000, 50.0)).is_err()
            };
            let t = Instant::now();
            let db = NeuroDb::builder().segments(vec![]).durable(&p).build().expect("recover");
            let recover_ms = t.elapsed().as_secs_f64() * 1e3;
            let h = db.wal_health().expect("live");
            let pass =
                write_err && h.recovered_torn_tail && h.replayed_ops == 0 && db.len() == base_len;
            rows.push(WalRow {
                name: "torn_tail",
                pass,
                recover_ms,
                detail: format!(
                    "write_errored={write_err} torn={} replayed={}",
                    h.recovered_torn_tail, h.replayed_ops
                ),
            });
            std::fs::remove_file(&p).ok();
        }

        // Drill 2 — checksum flip inside a *committed* record: the
        // write acks over the silent corruption, and the reopen must
        // refuse the log with a typed error — never quietly truncate
        // acked history.
        {
            let p = wal_path("flip");
            let plan = FaultPlan::new(seed).with_write_flip(ops_start + 25, 0x20);
            let acked = {
                let db = NeuroDb::builder()
                    .circuit(&circuit)
                    .durable(&p)
                    .wal_faults(plan)
                    .build()
                    .expect("flips do not fail the build");
                db.insert_segment(fresh(700_001, 60.0)).is_ok()
            };
            let t = Instant::now();
            let reopen = NeuroDb::builder().segments(vec![]).durable(&p).build();
            let recover_ms = t.elapsed().as_secs_f64() * 1e3;
            let refused = matches!(reopen, Err(NeuroError::Storage(_)));
            rows.push(WalRow {
                name: "flip_committed",
                pass: acked && refused,
                recover_ms,
                detail: format!("acked={acked} reopen_refused={refused}"),
            });
            std::fs::remove_file(&p).ok();
        }

        // Drill 3 — crash between commit and ack: the batch is durable
        // but the caller never hears back. Recovery must replay it —
        // the client-side at-most-once retry policy (never resend an
        // ack-unknown write) is what keeps this from double-applying.
        {
            let p = wal_path("unacked");
            {
                let db = NeuroDb::builder().circuit(&circuit).durable(&p).build().expect("live");
                db.insert_segment(fresh(700_002, 70.0)).expect("committed");
                // Process dies here: no checkpoint, the ack never left.
            }
            let t = Instant::now();
            let db = NeuroDb::builder().segments(vec![]).durable(&p).build().expect("recover");
            let recover_ms = t.elapsed().as_secs_f64() * 1e3;
            let h = db.wal_health().expect("live");
            let replayed = h.replayed_ops == 1 && db.len() == base_len + 1;
            rows.push(WalRow {
                name: "commit_without_ack",
                pass: replayed,
                recover_ms,
                detail: format!("replayed={} len_delta={}", h.replayed_ops, db.len() - base_len),
            });
            std::fs::remove_file(&p).ok();
        }
        rows
    };

    let mut t = Table::new([
        "fault rate",
        "prefetch",
        "p50 ms",
        "p99 ms",
        "queries/s",
        "retries",
        "injected",
        "quarantined",
        "exact",
    ]);
    for r in &rows {
        t.row([
            format!("{:.1}%", f64::from(r.permille) / 10.0),
            if r.prefetch { "scout".into() } else { "none".to_string() },
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            f1(r.qps),
            r.retries.to_string(),
            r.injected.to_string(),
            r.quarantined.to_string(),
            r.exact.to_string(),
        ]);
    }
    t.print();

    println!("\nWAL write-path fault points:");
    let mut wt = Table::new(["fault point", "pass", "recover ms", "detail"]);
    for r in &wal_rows {
        wt.row([
            r.name.to_string(),
            r.pass.to_string(),
            format!("{:.3}", r.recover_ms),
            r.detail.clone(),
        ]);
    }
    wt.print();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"transient_permille\": {}, \"prefetch\": {}, ",
                    "\"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"queries_per_sec\": {:.1}, ",
                    "\"retries\": {}, \"injected_faults\": {}, \"pages_quarantined\": {}, ",
                    "\"exact\": {}}}"
                ),
                r.permille,
                r.prefetch,
                r.p50_ms,
                r.p99_ms,
                r.qps,
                r.retries,
                r.injected,
                r.quarantined,
                r.exact,
            )
        })
        .collect();
    let wal_json: Vec<String> = wal_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"fault_point\": {:?}, \"pass\": {}, \"recover_ms\": {:.4}, \
                 \"detail\": {:?}}}",
                r.name, r.pass, r.recover_ms, r.detail
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"faults\",\n  \"segments\": {},\n  \"pages\": {},\n",
            "  \"frames\": {},\n  \"queries\": {},\n  \"seed\": {},\n  \"configs\": [\n{}\n  ],\n",
            "  \"wal\": [\n{}\n  ]\n}}\n"
        ),
        mem.len(),
        pages,
        frames,
        boxes.len(),
        seed,
        json_rows.join(",\n"),
        wal_json.join(",\n")
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");

    let exact_all = rows.iter().all(|r| r.exact);
    let quarantined: u64 = rows.iter().map(|r| r.quarantined).sum();
    let storm_retries: u64 = rows.iter().filter(|r| r.permille == 50).map(|r| r.retries).sum();
    let wal_all = wal_rows.iter().all(|r| r.pass);
    println!(
        "\nshape check: byte-identical recovery in every lane (exact: {exact_all}), \
         {quarantined} pages quarantined (acceptance: 0), \
         {storm_retries} retries absorbed at the 5% rate (acceptance: > 0), \
         WAL fault points held (acceptance: all 3): {wal_all}."
    );
    // Under --strict (the CI bench-smoke gate) the bar is enforced, not
    // just printed: all four checks are deterministic given the seed.
    if strict && (!exact_all || quarantined != 0 || storm_retries == 0 || !wal_all) {
        eprintln!(
            "faults --strict: acceptance bar FAILED (exact {exact_all}, quarantined \
             {quarantined}, retries at 5% {storm_retries}, wal {wal_all})"
        );
        std::process::exit(1);
    }
}

/// INGEST — sustained durable writes racing concurrent readers across
/// background re-freezes.
///
/// One writer drives single-op durable inserts (every 8th op removes an
/// earlier insert) into a live WAL-backed database while `readers`
/// threads query non-stop: one fixed region over the frozen base —
/// whose answer must never change, catching any torn snapshot swap —
/// and the band the writer is filling. A maintenance poller re-freezes
/// whenever the delta passes `writes / 8` pending ops, so the run
/// crosses several atomic base swaps.
///
/// Reported: acked inserts/s, ack p50/p99, query p50/p99 *during*
/// ingest, and swap count. Under `--strict` (the CI bench-smoke gate):
/// at least one background swap, every base-region read byte-identical,
/// the final state exact, and query p99 bounded (< 100 ms) across the
/// swaps.
fn ingest_bench(n: usize, writes: usize, readers: usize, seed: u64, out_path: &str, strict: bool) {
    use std::sync::atomic::AtomicBool;

    println!("\n== INGEST — durable writes vs concurrent readers across swaps ==\n");

    let mut neurons = 4u32;
    let circuit = loop {
        let c = jagged_circuit(neurons, 13);
        if c.segments().len() >= n || neurons >= 4096 {
            break c;
        }
        neurons *= 2;
    };
    let mut segments = circuit.segments().to_vec();
    segments.truncate(n);
    let base_len = segments.len();

    let wal =
        std::env::temp_dir().join(format!("neurospatial-bench-ingest-{}.wal", std::process::id()));
    std::fs::remove_file(&wal).ok();
    let threshold = (writes / 8).max(64);
    let db = NeuroDb::builder()
        .segments(segments)
        .durable(&wal)
        .refreeze_threshold(threshold)
        .build()
        .expect("live database");

    // The writer fills a band far outside the base data; the base
    // region's answer is therefore an invariant every reader can check
    // on every single read, across every swap.
    let base_region = Aabb::cube(db.bounds().center(), 40.0);
    let base_truth = db.range_query(&base_region).sorted_ids();
    let band = |i: u64| Vec3::new(50_000.0 + (i % 512) as f64 * 4.0, (i / 512) as f64 * 4.0, 0.0);
    let band_region = Aabb::cube(Vec3::new(51_000.0, 2_000.0, 0.0), 10_000.0);
    let fresh = |i: u64| {
        let p = band(i);
        NeuronSegment {
            id: 10_000_000 + i,
            neuron: 100_000 + i as u32,
            section: 0,
            index_on_section: i as u32,
            geom: neurospatial::geom::Segment::new(p, p + Vec3::new(1.5, 0.0, 0.5), 0.3),
        }
    };
    println!(
        "{base_len} base segments, {writes} durable writes (1 remove per 8 inserts), \
         {readers} readers, refreeze threshold {threshold}, seed {seed:#x}"
    );

    struct Ingest {
        acks: usize,
        ack_ms: Vec<f64>,
        write_s: f64,
        read_ms: Vec<f64>,
        reads: u64,
        base_exact: bool,
        expect_live: Vec<u64>,
    }
    let out = db.with_ingest_maintenance(Duration::from_millis(1), |db| {
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..readers.max(1) {
                handles.push(scope.spawn(|| {
                    let mut lat = Vec::new();
                    let (mut reads, mut exact) = (0u64, true);
                    while !stop.load(Ordering::Acquire) {
                        let t = Instant::now();
                        let got = db.range_query(&base_region).sorted_ids();
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        exact &= got == base_truth;
                        let t = Instant::now();
                        db.range_query(&band_region);
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        reads += 2;
                    }
                    (lat, reads, exact)
                }));
            }

            let mut ack_ms = Vec::with_capacity(writes);
            let mut live: Vec<u64> = Vec::new();
            let started = Instant::now();
            for i in 0..writes as u64 {
                if i % 8 == 7 {
                    // Remove a seed-picked earlier insert: the delta sees
                    // both sides of the lifecycle, not just growth.
                    let at = (seed.wrapping_mul(i | 1) >> 7) as usize % live.len();
                    let id = live.swap_remove(at);
                    let t = Instant::now();
                    db.remove_segment(id).expect("acked remove");
                    ack_ms.push(t.elapsed().as_secs_f64() * 1e3);
                } else {
                    let t = Instant::now();
                    db.insert_segment(fresh(i)).expect("acked insert");
                    ack_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    live.push(10_000_000 + i);
                }
            }
            let write_s = started.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);

            let (mut read_ms, mut reads, mut base_exact) = (Vec::new(), 0u64, true);
            for h in handles {
                let (lat, r, exact) = h.join().expect("reader");
                read_ms.extend(lat);
                reads += r;
                base_exact &= exact;
            }
            live.sort_unstable();
            Ingest { acks: writes, ack_ms, write_s, read_ms, reads, base_exact, expect_live: live }
        })
    });

    // Swaps observed, then the final-state check after one last freeze
    // folds the remaining delta in.
    let swaps = db.wal_health().expect("live").epoch;
    db.refreeze().expect("final freeze");
    let mut band_ids = db.range_query(&band_region).sorted_ids();
    band_ids.retain(|id| *id >= 10_000_000);
    let final_exact =
        band_ids == out.expect_live && db.range_query(&base_region).sorted_ids() == base_truth;
    std::fs::remove_file(&wal).ok();

    let pct = |v: &mut Vec<f64>, p: f64| {
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            0.0
        } else {
            v[((v.len() - 1) as f64 * p) as usize]
        }
    };
    let (mut ack_ms, mut read_ms) = (out.ack_ms, out.read_ms);
    let (ack_p50, ack_p99) = (pct(&mut ack_ms, 0.50), pct(&mut ack_ms, 0.99));
    let (q_p50, q_p99) = (pct(&mut read_ms, 0.50), pct(&mut read_ms, 0.99));
    let writes_per_sec = out.acks as f64 / out.write_s.max(1e-9);

    let mut t = Table::new([
        "writes/s",
        "ack p50 ms",
        "ack p99 ms",
        "query p50 ms",
        "query p99 ms",
        "reads",
        "swaps",
        "base exact",
        "final exact",
    ]);
    t.row([
        f1(writes_per_sec),
        format!("{ack_p50:.3}"),
        format!("{ack_p99:.3}"),
        format!("{q_p50:.4}"),
        format!("{q_p99:.4}"),
        out.reads.to_string(),
        swaps.to_string(),
        out.base_exact.to_string(),
        final_exact.to_string(),
    ]);
    t.print();

    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"ingest\",\n  \"base_segments\": {},\n  \"writes\": {},\n",
            "  \"readers\": {},\n  \"refreeze_threshold\": {},\n  \"seed\": {},\n",
            "  \"writes_per_sec\": {:.1},\n  \"ack_p50_ms\": {:.4},\n  \"ack_p99_ms\": {:.4},\n",
            "  \"query_p50_ms\": {:.4},\n  \"query_p99_ms\": {:.4},\n  \"reads\": {},\n",
            "  \"swaps\": {},\n  \"base_reads_exact\": {},\n  \"final_exact\": {}\n}}\n"
        ),
        base_len,
        out.acks,
        readers,
        threshold,
        seed,
        writes_per_sec,
        ack_p50,
        ack_p99,
        q_p50,
        q_p99,
        out.reads,
        swaps,
        out.base_exact,
        final_exact,
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");

    println!(
        "\nshape check: {swaps} background swaps (acceptance: >= 1), base-region reads \
         byte-identical across swaps: {}, final state exact: {final_exact}, query p99 \
         {q_p99:.3} ms (acceptance: < 100 ms).",
        out.base_exact
    );
    if strict && (swaps < 1 || !out.base_exact || !final_exact || q_p99 >= 100.0) {
        eprintln!(
            "ingest --strict: acceptance bar FAILED (swaps {swaps}, base_exact {}, \
             final_exact {final_exact}, query p99 {q_p99:.3} ms)",
            out.base_exact
        );
        std::process::exit(1);
    }
}

/// Join — the TOUCH engine race behind the cache-conscious join rebuild.
/// The pointer-walking classic path and the CSR/SoA engine run the same
/// segment-cloud distance join at every thread count; PBSM, plane-sweep
/// and (on small inputs) the nested loop provide the baseline axis.
///
/// Two measurements per thread count:
///
/// * **cold**: one full `join()` — build + assign + join, what a
///   one-shot caller pays; the speedup gate compares cold classic vs
///   cold engine at equal threads;
/// * **steady**: a prebuilt [`TouchEngine`] driven through one warm
///   [`JoinScratch`] — the repeated-join regime; allocs/pair comes from
///   the binary's counting allocator (and must be exactly 0 at one
///   thread).
///
/// Everything is written machine-readably to `BENCH_touch.json`; under
/// `--strict` the acceptance bar (>= 1.5x at every thread count, 0
/// steady-state allocs) becomes the exit code.
fn join_bench(
    n: usize,
    eps: f64,
    fanout: usize,
    sweep_min: usize,
    max_threads: usize,
    out_path: &str,
    strict: bool,
) {
    println!("\n== JOIN — cache-conscious TOUCH engine vs the classic path ==\n");
    neurospatial::touch::register_allocation_probe(allocations);
    // Split one dense cloud into the two join sides by neuron parity
    // (the E5 split-populations pattern): both populations share the
    // same tissue volume, so the ε-join is genuinely dense — but no
    // segment ever trivially touches its own neighbour on the branch.
    let all = sized_segments(2 * n, 42);
    let a: Vec<NeuronSegment> = all.iter().filter(|s| s.neuron % 2 == 0).cloned().collect();
    let b: Vec<NeuronSegment> = all.iter().filter(|s| s.neuron % 2 == 1).cloned().collect();
    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads.max(1) {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }
    println!(
        "|A| = {}, |B| = {}, ε = {eps}, fanout {fanout}, sweep_min {sweep_min}, threads {:?}\n",
        a.len(),
        b.len(),
        thread_counts
    );

    /// Best of 3 runs; returns (result of last run, best total ms,
    /// allocations of the last run).
    fn race_join(mut f: impl FnMut() -> JoinResult) -> (JoinResult, f64, u64) {
        let mut best = f64::INFINITY;
        let mut last = JoinResult::default();
        let mut allocs = 0;
        for _ in 0..3 {
            let a0 = allocations();
            let r = f();
            allocs = allocations() - a0;
            best = best.min(r.stats.total_ms);
            last = r;
        }
        (last, best, allocs)
    }

    let mut t = Table::new([
        "config",
        "threads",
        "total ms",
        "build ms",
        "assign ms",
        "join ms",
        "pairs",
        "Kpairs/s",
        "allocs/pair",
        "vs classic",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let row = |t: &mut Table,
               json_rows: &mut Vec<String>,
               config: &str,
               threads: usize,
               total_ms: f64,
               s: &JoinStats,
               allocs: u64,
               speedup: Option<f64>| {
        let pairs_per_sec = s.results as f64 / (total_ms / 1e3).max(1e-9);
        let allocs_per_pair = allocs as f64 / (s.results as f64).max(1.0);
        t.row([
            config.to_string(),
            threads.to_string(),
            f1(total_ms),
            f1(s.build_ms),
            f1(s.assign_ms),
            f1(s.join_ms),
            s.results.to_string(),
            f1(pairs_per_sec / 1e3),
            format!("{allocs_per_pair:.4}"),
            speedup.map_or_else(|| "-".to_string(), |x| format!("{x:.2}x")),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"config\": {:?}, \"threads\": {}, \"total_ms\": {:.3}, ",
                "\"build_ms\": {:.3}, \"assign_ms\": {:.3}, \"join_ms\": {:.3}, ",
                "\"pairs\": {}, \"pairs_per_sec\": {:.0}, \"allocs_per_pair\": {:.4}, ",
                "\"filter_comparisons\": {}, \"refine_comparisons\": {}, ",
                "\"speedup_vs_classic\": {}}}"
            ),
            config,
            threads,
            total_ms,
            s.build_ms,
            s.assign_ms,
            s.join_ms,
            s.results,
            pairs_per_sec,
            allocs_per_pair,
            s.filter_comparisons,
            s.refine_comparisons,
            speedup.map_or_else(|| "null".to_string(), |x| format!("{x:.3}")),
        ));
    };

    // --- The gate: classic vs rebuilt engine at equal thread count ------
    // Two speedups per thread count. "cold" compares one-shot `join()`
    // calls — both sides pay their build. "steady" compares the classic
    // per-join cost against a prebuilt [`TouchEngine`] driven through a
    // warm scratch — the repeated-join regime the engine API exists for
    // (the pre-PR path has no way to amortise its build). The --strict
    // gate holds the steady per-join speedup at >= 1.5x per thread
    // count; cold is reported alongside.
    let reference = ClassicTouchJoin { fanout, threads: 1 }.join(&a, &b, eps).sorted_pairs();
    let mut steady_speedups: Vec<f64> = Vec::new();
    let mut cold_speedups: Vec<f64> = Vec::new();
    let mut steady_allocs_1thr = u64::MAX;
    for &threads in &thread_counts {
        let (classic_r, classic_ms, classic_allocs) =
            race_join(|| ClassicTouchJoin { fanout, threads }.join(&a, &b, eps));
        row(
            &mut t,
            &mut json_rows,
            "touch-classic",
            threads,
            classic_ms,
            &classic_r.stats,
            classic_allocs,
            None,
        );

        let join = TouchJoin { fanout, threads, sweep_min };
        let (new_r, new_ms, new_allocs) = race_join(|| join.join(&a, &b, eps));
        assert_eq!(
            new_r.sorted_pairs(),
            reference,
            "engine pair set diverges from classic at {threads} thread(s)"
        );
        let speedup = classic_ms / new_ms.max(1e-9);
        cold_speedups.push(speedup);
        row(
            &mut t,
            &mut json_rows,
            "touch",
            threads,
            new_ms,
            &new_r.stats,
            new_allocs,
            Some(speedup),
        );

        // Steady state: prebuilt engine, warm scratch and output buffer.
        let engine = TouchEngine::build(&a, fanout);
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        engine.join_into(&b, eps, threads, sweep_min, &mut scratch, &mut out); // warm-up
        if threads == 1 {
            let rep = scratch.report();
            let hist: Vec<String> = rep.histogram.iter().map(|c| c.to_string()).collect();
            println!(
                "assignment: mean depth {:.2}, filtered {}, histogram [{}]\n",
                rep.mean_depth(),
                rep.filtered_out,
                hist.join(" ")
            );
        }
        let mut best = f64::INFINITY;
        let mut steady = JoinStats::default();
        for _ in 0..3 {
            let s = engine.join_into(&b, eps, threads, sweep_min, &mut scratch, &mut out);
            best = best.min(s.total_ms);
            steady = s;
        }
        if threads == 1 {
            steady_allocs_1thr = steady.allocations;
        }
        steady_speedups.push(classic_ms / best.max(1e-9));
        row(
            &mut t,
            &mut json_rows,
            "touch (steady)",
            threads,
            best,
            &steady,
            steady.allocations,
            Some(classic_ms / best.max(1e-9)),
        );
    }

    // --- Baselines ------------------------------------------------------
    let (r, ms, al) = race_join(|| PbsmJoin::default().join(&a, &b, eps));
    assert_eq!(r.sorted_pairs(), reference, "pbsm diverges");
    row(&mut t, &mut json_rows, "pbsm", 1, ms, &r.stats, al, None);
    let (r, ms, al) = race_join(|| PlaneSweepJoin.join(&a, &b, eps));
    assert_eq!(r.sorted_pairs(), reference, "plane-sweep diverges");
    row(&mut t, &mut json_rows, "plane-sweep", 1, ms, &r.stats, al, None);
    let (r, ms, al) = race_join(|| S3Join { fanout }.join(&a, &b, eps));
    assert_eq!(r.sorted_pairs(), reference, "s3 diverges");
    row(&mut t, &mut json_rows, "s3", 1, ms, &r.stats, al, None);
    if n <= 4000 {
        let (r, ms, al) = race_join(|| NestedLoopJoin.join(&a, &b, eps));
        assert_eq!(r.sorted_pairs(), reference, "nested-loop diverges");
        row(&mut t, &mut json_rows, "nested-loop", 1, ms, &r.stats, al, None);
    } else {
        println!("(nested-loop skipped at |A| > 4000 — O(n²))");
    }
    t.print();

    let min_steady = steady_speedups.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    let min_cold = cold_speedups.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"join\",\n  \"segments_per_side\": {},\n  \"eps\": {},\n",
            "  \"fanout\": {},\n  \"sweep_min\": {},\n  \"thread_counts\": {:?},\n",
            "  \"pairs\": {},\n  \"min_steady_speedup_vs_classic\": {:.3},\n",
            "  \"min_cold_speedup_vs_classic\": {:.3},\n",
            "  \"steady_state_allocs_1_thread\": {},\n  \"configs\": [\n{}\n  ]\n}}\n"
        ),
        a.len(),
        eps,
        fanout,
        sweep_min,
        thread_counts,
        reference.len(),
        min_steady,
        min_cold,
        steady_allocs_1thr,
        json_rows.join(",\n")
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");
    println!(
        "\nshape check: per join at equal thread count, the prebuilt engine beats the\n\
         pre-PR path (which rebuilds its tree every call) by {min_steady:.2}x at worst\n\
         (acceptance >= 1.5x); one-shot cold joins win by {min_cold:.2}x at worst;\n\
         steady-state joins allocate {steady_allocs_1thr} time(s) at 1 thread (acceptance: 0);\n\
         every algorithm produced the identical pair set."
    );
    // Under --strict (the CI bench-smoke gate) the acceptance bar is the
    // exit code: a perf regression in the engine or a reintroduced
    // steady-state allocation fails the job instead of shipping silently.
    if strict && (min_steady < 1.5 || steady_allocs_1thr != 0) {
        eprintln!(
            "join --strict: acceptance bar FAILED \
             (min steady speedup {min_steady:.2}x, steady allocs {steady_allocs_1thr})"
        );
        std::process::exit(1);
    }
}

/// API (E8) — the three terminal modes of the unified `Query` builder
/// raced on the same *selective* workload (a pushed-down predicate keeps
/// ~1/8 of each result set). For every backend, monolithic and sharded:
///
/// * **collect+post-filter** — the pre-redesign serving pattern: the
///   allocating engine lane (`index().range_query`, exactly what
///   `db.range_query()` ran before this redesign) materializes the full
///   result `Vec` with fresh traversal state, the caller filters
///   afterwards;
/// * **collect (new)** — the redesigned `collect()` terminal (reported
///   for transparency: it now rides the thread-shared scratch, so even
///   materializing callers got faster);
/// * **stream** — `query().range().filter(&pred).stream(|s| …)`: the
///   predicate runs *below* the index traversal, nothing is
///   materialized, and the thread-shared scratch makes the steady state
///   allocation-free;
/// * **session** — a bound `QuerySession` reusing one scratch + result
///   buffer across the whole loop.
///
/// Identical result sets are asserted during the warm-up pass. Under
/// `--strict` (the CI bench-smoke gate) the acceptance bar is the exit
/// code: stream must allocate 0 bytes steady-state and beat
/// collect+post-filter by >= 1.2x on every configuration.
#[allow(clippy::too_many_arguments)]
fn api_bench(
    backends: &[IndexBackend],
    n: usize,
    queries: usize,
    half: f64,
    cap: usize,
    shards: usize,
    out_path: &str,
    strict: bool,
) {
    println!("\n== API (E8) — collect vs stream vs session on selective queries ==\n");
    let segments = sized_segments(n, 42);
    let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
    let w = RangeQueryWorkload::generate(
        1000,
        &bounds,
        queries,
        half,
        QueryPlacement::DataCentered,
        Some(&segments),
    );
    let pred = |s: &NeuronSegment| s.neuron.is_multiple_of(8);
    println!(
        "{} segments, batch of {} range queries ({:.0}³, data-centred), predicate keeps neuron%8==0",
        segments.len(),
        w.queries.len(),
        half * 2.0
    );
    println!(
        "page capacity {cap}, sharded configurations: {shards} shards, 1 worker thread, \
         best of 15 rounds\n"
    );

    /// Race the four modes *interleaved*: every round times each mode
    /// once, in rotation, so slow drift (thermal, noisy neighbours) hits
    /// all modes equally instead of biasing whichever ran last.
    /// Per mode: best-of-15 wall time in ns/query, allocation count of
    /// the final (steady-state, every buffer warm) round, and the final
    /// round's checksum.
    fn race_interleaved(
        queries: usize,
        passes: &mut [&mut dyn FnMut() -> u64],
    ) -> Vec<(f64, f64, u64)> {
        let mut best = vec![f64::INFINITY; passes.len()];
        let mut allocs = vec![0u64; passes.len()];
        let mut sums = vec![0u64; passes.len()];
        for _ in 0..15 {
            for (i, pass) in passes.iter_mut().enumerate() {
                let a0 = allocations();
                let t = Instant::now();
                sums[i] = pass();
                best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
                allocs[i] = allocations() - a0;
            }
        }
        (0..passes.len())
            .map(|i| (best[i] * 1e6 / queries as f64, allocs[i] as f64 / queries as f64, sums[i]))
            .collect()
    }

    let mut t = Table::new([
        "backend",
        "old collect ns/q",
        "new collect ns/q",
        "stream ns/q",
        "session ns/q",
        "stream speedup",
        "allocs/q (old)",
        "allocs/q (stream)",
        "allocs/q (session)",
        "kept/q",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut stream_alloc_free = 0usize;
    let configs: Vec<(String, bool)> = backends
        .iter()
        .flat_map(|b| [(b.name().to_string(), false), (b.sharded_name(), true)])
        .collect();

    for (name, sharded) in &configs {
        let backend: IndexBackend = name.strip_prefix("sharded:").unwrap_or(name).parse().unwrap();
        let db = NeuroDb::builder()
            .segments(segments.clone())
            .backend(backend)
            .page_capacity(cap)
            .shards(if *sharded { shards } else { 1 })
            .threads(1)
            .build()
            .expect("valid configuration");
        let mut session =
            db.query().range(w.queries[0]).filter(&pred).session().expect("no population");

        // Warm-up pass: grows every buffer to steady state and asserts
        // the three modes agree with post-filtering the legacy output.
        let mut kept_total = 0u64;
        for q in &w.queries {
            let legacy = db.range_query(q);
            let want: Vec<u64> = legacy.segments.iter().filter(|s| pred(s)).map(|s| s.id).collect();
            let mut streamed: Vec<u64> = Vec::new();
            let stats = db
                .query()
                .range(*q)
                .filter(&pred)
                .stream(|s| streamed.push(s.id))
                .expect("no population");
            assert_eq!(streamed, want, "{name}: stream diverges from post-filter at {q}");
            assert_eq!(stats.results as usize, want.len(), "{name}: stream result count");
            let (hits, _) = session.range(q);
            assert!(
                hits.iter().map(|s| s.id).eq(want.iter().copied()),
                "{name}: session diverges at {q}"
            );
            kept_total += want.len() as u64;
        }

        // Mode 0 — the pre-redesign pattern: the allocating engine lane
        // (what `db.range_query` executed before the builder existed),
        // then a post-filter over the materialized Vec. Modes 1-3: the
        // redesigned collect / stream / session terminals.
        let queries_ref = &w.queries;
        let db_ref = &db;
        let mut old_pass = || {
            let mut kept = 0u64;
            for q in queries_ref {
                let out = db_ref.index().range_query(q);
                kept += out.segments.iter().filter(|s| pred(s)).count() as u64;
            }
            kept
        };
        let mut collect_pass = || {
            let mut kept = 0u64;
            for q in queries_ref {
                let out = db_ref.range_query(q);
                kept += out.segments.iter().filter(|s| pred(s)).count() as u64;
            }
            kept
        };
        let mut stream_pass = || {
            let mut kept = 0u64;
            for q in queries_ref {
                let stats = db_ref
                    .query()
                    .range(*q)
                    .filter(&pred)
                    .stream(|_| kept += 1)
                    .expect("no population");
                std::hint::black_box(stats.results);
            }
            kept
        };
        let mut session_pass = || {
            let mut kept = 0u64;
            for q in queries_ref {
                let (hits, _) = session.range(q);
                kept += hits.len() as u64;
            }
            kept
        };
        let timed = race_interleaved(
            w.queries.len(),
            &mut [&mut old_pass, &mut collect_pass, &mut stream_pass, &mut session_pass],
        );
        let (old_ns, old_allocs, old_sum) = timed[0];
        let (collect_ns, _collect_allocs, collect_sum) = timed[1];
        let (stream_ns, stream_allocs, stream_sum) = timed[2];
        let (session_ns, session_allocs, session_sum) = timed[3];
        assert_eq!(old_sum, kept_total, "{name}: pre-redesign sum");
        assert_eq!(collect_sum, kept_total, "{name}: collect sum");
        assert_eq!(stream_sum, kept_total, "{name}: stream sum");
        assert_eq!(session_sum, kept_total, "{name}: session sum");

        let speedup = old_ns / stream_ns.max(1e-9);
        min_speedup = min_speedup.min(speedup);
        if stream_allocs == 0.0 {
            stream_alloc_free += 1;
        }
        let nq = w.queries.len() as f64;
        t.row([
            name.clone(),
            f1(old_ns),
            f1(collect_ns),
            f1(stream_ns),
            f1(session_ns),
            format!("{speedup:.2}x"),
            f2(old_allocs),
            f2(stream_allocs),
            f2(session_allocs),
            f1(kept_total as f64 / nq),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"backend\": {:?}, \"sharded\": {}, ",
                "\"collect_post_filter_ns_per_query\": {:.1}, ",
                "\"new_collect_ns_per_query\": {:.1}, \"stream_ns_per_query\": {:.1}, ",
                "\"session_ns_per_query\": {:.1}, \"stream_speedup_vs_collect\": {:.3}, ",
                "\"allocs_per_query_collect\": {:.2}, \"allocs_per_query_stream\": {:.2}, ",
                "\"allocs_per_query_session\": {:.2}, \"kept_per_query\": {:.2}}}"
            ),
            name,
            sharded,
            old_ns,
            collect_ns,
            stream_ns,
            session_ns,
            speedup,
            old_allocs,
            stream_allocs,
            session_allocs,
            kept_total as f64 / nq,
        ));
    }
    t.print();

    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"api\",\n  \"segments\": {},\n  \"queries\": {},\n",
            "  \"query_half_extent\": {:.1},\n  \"page_capacity\": {},\n",
            "  \"shards\": {},\n  \"threads\": 1,\n",
            "  \"predicate\": \"neuron % 8 == 0\",\n",
            "  \"min_stream_speedup_vs_collect\": {:.3},\n",
            "  \"stream_alloc_free_configs\": {},\n  \"configs\": [\n{}\n  ]\n}}\n"
        ),
        segments.len(),
        w.queries.len(),
        half,
        cap,
        shards,
        min_speedup,
        stream_alloc_free,
        json_rows.join(",\n")
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");
    println!(
        "\nshape check: stream() with the pushed-down predicate does 0 steady-state\n\
         allocs/query on {stream_alloc_free}/{} configs and beats collect()+post-filter by\n\
         {min_speedup:.2}x at worst (acceptance: 0 allocs everywhere, >= 1.2x on every config);\n\
         identical filtered result sets asserted on every query of every config.",
        configs.len()
    );
    if strict && (stream_alloc_free < configs.len() || min_speedup < 1.2) {
        eprintln!(
            "api --strict: acceptance bar FAILED \
             (stream alloc-free {stream_alloc_free}/{}, min speedup {min_speedup:.2}x, \
             need all and >= 1.2x)",
            configs.len()
        );
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// SERVE / LOAD — the networked query service under load
// ---------------------------------------------------------------------

/// One load phase's client-side outcome: accepted-request latencies as
/// an [`neurospatial::obs::HistogramSnapshot`] (recorded concurrently by every client
/// thread, no per-request `Vec` growth, mergeable for free), shed
/// connections, transport failures.
struct LoadOutcome {
    latencies: neurospatial::obs::HistogramSnapshot,
    rejects: u64,
    io_errors: u64,
    wall_s: f64,
}

impl LoadOutcome {
    /// Accepted requests (the histogram's population).
    fn completed(&self) -> u64 {
        self.latencies.count
    }

    /// The `p`-quantile (0 < p <= 1) of the accepted latencies, in ms.
    /// Log-linear bucket resolution: ≤ 6.25% relative error.
    fn pct(&self, p: f64) -> f64 {
        self.latencies.quantile(p) as f64 / 1e6
    }

    /// The slowest accepted request, in ms (exact, not bucketed).
    fn max_ms(&self) -> f64 {
        if self.latencies.count == 0 {
            return 0.0;
        }
        self.latencies.max as f64 / 1e6
    }

    /// Completed requests per second of wall time.
    fn qps(&self) -> f64 {
        self.completed() as f64 / self.wall_s.max(1e-9)
    }
}

/// Run one closure per client on its own thread, all recording into one
/// shared latency histogram, and merge the per-client
/// `(rejects, io_errors)` tallies.
fn gather_clients<F>(clients: usize, per_client: F) -> LoadOutcome
where
    F: Fn(usize, &neurospatial::obs::Histogram) -> (u64, u64) + Sync,
{
    let hist = neurospatial::obs::Histogram::new();
    let t_all = Instant::now();
    let mut outcome = LoadOutcome {
        latencies: neurospatial::obs::HistogramSnapshot::default(),
        rejects: 0,
        io_errors: 0,
        wall_s: 0.0,
    };
    std::thread::scope(|scope| {
        let per_client = &per_client;
        let hist = &hist;
        let handles: Vec<_> =
            (0..clients.max(1)).map(|id| scope.spawn(move || per_client(id, hist))).collect();
        for h in handles {
            let (rejects, io_errors) = h.join().expect("load client");
            outcome.rejects += rejects;
            outcome.io_errors += io_errors;
        }
    });
    outcome.wall_s = t_all.elapsed().as_secs_f64();
    outcome.latencies = hist.snapshot();
    outcome
}

/// Drive `total` range requests open-loop against `addr`: `clients`
/// connections, arrivals on fixed per-client grids that interleave into
/// `rate` requests/second overall. Latency is measured from the
/// *scheduled* arrival, not the send, so server-side queueing delay is
/// charged to the server instead of silently omitted (the coordinated-
/// omission trap of closed-loop load generators).
fn open_loop(addr: &str, queries: &[Aabb], clients: usize, total: usize, rate: f64) -> LoadOutcome {
    let clients = clients.max(1);
    let per_client = (total / clients).max(1);
    let interval = Duration::from_secs_f64(clients as f64 / rate.max(1.0));
    gather_clients(clients, |id, hist| {
        let desc = QueryDescView { tenant: id as u32 + 1, ..Default::default() };
        let mut out = Vec::new();
        let (mut rejects, mut io_errors) = (0u64, 0u64);
        // Warm the connection and both frame buffers off the clock.
        let mut conn = Client::connect(addr).ok();
        if let Some(c) = conn.as_mut() {
            for q in queries.iter().take(4) {
                let _ = c.range(&desc, q, &mut out);
            }
        }
        // Stagger the per-client grids so arrivals interleave.
        let start = Instant::now() + interval.mul_f64(id as f64 / clients as f64);
        for i in 0..per_client {
            let scheduled = start + interval.mul_f64(i as f64);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let q = &queries[(id + i * clients) % queries.len()];
            let mut c = match conn.take() {
                Some(c) => c,
                None => match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        io_errors += 1;
                        continue;
                    }
                },
            };
            match c.range(&desc, q, &mut out) {
                Ok(_) => {
                    hist.record_duration(scheduled.elapsed());
                    conn = Some(c);
                }
                // A shed or broken connection is dropped; the next
                // arrival reconnects.
                Err(ClientError::Busy) => rejects += 1,
                Err(_) => io_errors += 1,
            }
        }
        (rejects, io_errors)
    })
}

/// Hammer `addr` closed-loop with one fresh connection per attempt —
/// the shedding regime. Accepted latency includes the TCP connect.
fn overload(addr: &str, queries: &[Aabb], clients: usize, attempts: usize) -> LoadOutcome {
    gather_clients(clients, |id, hist| {
        let desc = QueryDescView { tenant: 100 + id as u32, ..Default::default() };
        let mut out = Vec::new();
        let (mut rejects, mut io_errors) = (0u64, 0u64);
        for i in 0..attempts {
            let q = &queries[(id + i * clients.max(1)) % queries.len()];
            let t0 = Instant::now();
            match Client::connect(addr) {
                Err(_) => io_errors += 1,
                Ok(mut c) => match c.range(&desc, q, &mut out) {
                    Ok(_) => hist.record_duration(t0.elapsed()),
                    Err(ClientError::Busy) => rejects += 1,
                    Err(_) => io_errors += 1,
                },
            }
        }
        (rejects, io_errors)
    })
}

/// SERVE — the networked query service end to end, three phases:
///
/// * **steady**: one worker, one connection, warm session and frame
///   buffers on both sides — after warm-up, `n` sequential requests
///   must allocate *nothing anywhere in the process* (server decode,
///   session traversal, tenant accounting, response encoding, client
///   decode all ride reused buffers);
/// * **open-loop**: `--clients` connections at a fixed arrival rate
///   (40% of the measured sequential throughput) — queries/s and
///   p50/p99/p99.9 latency from scheduled-arrival time;
/// * **overload**: workers=1, queue=0 while `--clients` hammer — the
///   admission controller must shed (nonzero fast-rejects) while
///   accepted requests keep a bounded p99.
///
/// Everything lands in `BENCH_serve.json`. Under `--strict` (the CI
/// bench-smoke gate) the bar is the exit code: 0 allocations/request
/// steady-state, 0 protocol errors anywhere, nonzero fast-rejects at
/// overload.
fn serve_bench(n: usize, clients: usize, half: f64, out_path: &str, strict: bool) {
    println!("\n== SERVE — wire protocol, session pooling, admission control ==\n");
    let segments = sized_segments(n, 42);
    let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
    let w = RangeQueryWorkload::generate(
        1000,
        &bounds,
        256,
        half,
        QueryPlacement::DataCentered,
        Some(&segments),
    );
    let db = NeuroDb::builder()
        .segments(segments.clone())
        .backend(IndexBackend::Flat)
        .build()
        .expect("flat db");
    let filters = FilterRegistry::new();
    println!(
        "{} segments (flat), {} distinct queries ({:.0}³, data-centred), {n} requests, \
         {clients} clients\n",
        segments.len(),
        w.queries.len(),
        half * 2.0
    );

    // --- Phase A: sequential steady state — the allocation gate. --------
    let cfg = ServerConfig { workers: 1, ..Default::default() };
    let (seq_qps, allocs_per_req, pe_a) = serve_with(&db, &filters, &cfg, |handle| {
        let addr = handle.addr().to_string();
        let mut c = Client::connect(&*addr).expect("connect");
        let desc = QueryDescView { tenant: 1, ..Default::default() };
        let mut out = Vec::new();
        for q in &w.queries {
            c.range(&desc, q, &mut out).expect("warmup request");
        }
        let a0 = allocations();
        let t0 = Instant::now();
        for i in 0..n {
            c.range(&desc, &w.queries[i % w.queries.len()], &mut out).expect("steady request");
        }
        let wall = t0.elapsed().as_secs_f64();
        let allocs = allocations() - a0;
        (
            n as f64 / wall.max(1e-9),
            allocs as f64 / n as f64,
            handle.metrics().protocol_errors.load(Ordering::Relaxed),
        )
    })
    .expect("serve (steady)");

    // --- Phase B: open-loop latency under concurrency. -------------------
    let rate = (seq_qps * 0.4).max(100.0);
    let cfg =
        ServerConfig { workers: clients.max(1), queue: 2 * clients.max(1), ..Default::default() };
    let (open, pe_b) = serve_with(&db, &filters, &cfg, |handle| {
        let addr = handle.addr().to_string();
        let o = open_loop(&addr, &w.queries, clients, n, rate);
        (o, handle.metrics().protocol_errors.load(Ordering::Relaxed))
    })
    .expect("serve (open-loop)");

    // --- Phase C: overload — admission control must shed. ----------------
    let cfg =
        ServerConfig { workers: 1, queue: 0, poll: Duration::from_millis(5), ..Default::default() };
    let attempts = (n / clients.max(1)).max(100);
    let (over, shed_rejects, pe_c) = serve_with(&db, &filters, &cfg, |handle| {
        let addr = handle.addr().to_string();
        let o = overload(&addr, &w.queries, clients, attempts);
        let m = handle.metrics();
        (o, m.rejected.load(Ordering::Relaxed), m.protocol_errors.load(Ordering::Relaxed))
    })
    .expect("serve (overload)");

    let mut t = Table::new([
        "phase",
        "completed",
        "q/s",
        "p50 ms",
        "p99 ms",
        "p99.9 ms",
        "max ms",
        "rejects",
        "allocs/req",
    ]);
    t.row([
        "steady (1 conn)".to_string(),
        n.to_string(),
        f1(seq_qps),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "0".into(),
        format!("{allocs_per_req:.4}"),
    ]);
    t.row([
        "open-loop".to_string(),
        open.completed().to_string(),
        f1(open.qps()),
        format!("{:.3}", open.pct(0.50)),
        format!("{:.3}", open.pct(0.99)),
        format!("{:.3}", open.pct(0.999)),
        format!("{:.3}", open.max_ms()),
        open.rejects.to_string(),
        "-".into(),
    ]);
    t.row([
        "overload (w=1,q=0)".to_string(),
        over.completed().to_string(),
        f1(over.qps()),
        format!("{:.3}", over.pct(0.50)),
        format!("{:.3}", over.pct(0.99)),
        format!("{:.3}", over.pct(0.999)),
        format!("{:.3}", over.max_ms()),
        shed_rejects.to_string(),
        "-".into(),
    ]);
    t.print();

    let protocol_errors = pe_a + pe_b + pe_c;
    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"serve\",\n  \"segments\": {},\n  \"requests\": {},\n",
            "  \"clients\": {},\n  \"query_half_extent\": {:.1},\n",
            "  \"steady\": {{\"sequential_qps\": {:.0}, \"allocs_per_request\": {:.4}}},\n",
            "  \"open_loop\": {{\"target_qps\": {:.0}, \"achieved_qps\": {:.0}, ",
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}, ",
            "\"completed\": {}, ",
            "\"rejects\": {}, \"io_errors\": {}}},\n",
            "  \"overload\": {{\"workers\": 1, \"queue\": 0, \"attempts\": {}, ",
            "\"accepted\": {}, \"fast_rejects\": {}, \"client_observed_busy\": {}, ",
            "\"accepted_p50_ms\": {:.3}, \"accepted_p99_ms\": {:.3}, ",
            "\"accepted_max_ms\": {:.3}}},\n",
            "  \"protocol_errors\": {}\n}}\n"
        ),
        segments.len(),
        n,
        clients,
        half,
        seq_qps,
        allocs_per_req,
        rate,
        open.qps(),
        open.pct(0.50),
        open.pct(0.99),
        open.pct(0.999),
        open.max_ms(),
        open.completed(),
        open.rejects,
        open.io_errors,
        attempts * clients.max(1),
        over.completed(),
        shed_rejects,
        over.rejects,
        over.pct(0.50),
        over.pct(0.99),
        over.max_ms(),
        protocol_errors
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");
    println!(
        "\nshape check: {n} steady requests allocate {allocs_per_req:.4}/request (acceptance: \
         exactly 0);\nthe open-loop fleet completed {} requests at {:.0} q/s with p99 {:.2} ms;\n\
         at overload the admission controller fast-rejected {shed_rejects} connections \
         (acceptance: > 0)\nwhile accepted requests held p99 {:.2} ms; {protocol_errors} \
         protocol errors (acceptance: 0).",
        open.completed(),
        open.qps(),
        open.pct(0.99),
        over.pct(0.99)
    );
    if strict && (allocs_per_req != 0.0 || protocol_errors != 0 || shed_rejects == 0) {
        eprintln!(
            "serve --strict: acceptance bar FAILED (allocs/request {allocs_per_req:.4}, \
             protocol errors {protocol_errors}, fast rejects {shed_rejects})"
        );
        std::process::exit(1);
    }
}

/// Parameters for the external-server load generator.
struct LoadSpec {
    neurons: u32,
    seed: u64,
    requests: usize,
    clients: usize,
    rate: f64,
    half: f64,
}

/// LOAD — the serve scenario's open-loop fleet decoupled from the
/// in-process server, for driving an *external* `neurospatial-server`
/// over real sockets. `--neurons`/`--seed` must mirror the server's so
/// the generated queries land on its data.
fn load_bench(addr: &str, spec: &LoadSpec, out_path: &str) {
    println!("\n== LOAD — open-loop client fleet against {addr} ==\n");
    let circuit = CircuitBuilder::new(spec.seed).neurons(spec.neurons).build();
    let segments = circuit.segments();
    let bounds = segments.iter().fold(Aabb::EMPTY, |a, s| a.union(&s.aabb()));
    let w = RangeQueryWorkload::generate(
        1000,
        &bounds,
        256,
        spec.half,
        QueryPlacement::DataCentered,
        Some(segments),
    );
    println!(
        "{} requests over {} clients at {:.0} q/s (mirroring a {}-neuron seed-{} circuit)\n",
        spec.requests, spec.clients, spec.rate, spec.neurons, spec.seed
    );
    let o = open_loop(addr, &w.queries, spec.clients, spec.requests, spec.rate);

    let mut t = Table::new([
        "completed",
        "q/s",
        "p50 ms",
        "p99 ms",
        "p99.9 ms",
        "max ms",
        "rejects",
        "io errors",
    ]);
    t.row([
        o.completed().to_string(),
        f1(o.qps()),
        format!("{:.3}", o.pct(0.50)),
        format!("{:.3}", o.pct(0.99)),
        format!("{:.3}", o.pct(0.999)),
        format!("{:.3}", o.max_ms()),
        o.rejects.to_string(),
        o.io_errors.to_string(),
    ]);
    t.print();

    let json = format!(
        concat!(
            "{{\n  \"scenario\": \"load\",\n  \"addr\": {:?},\n  \"requests\": {},\n",
            "  \"clients\": {},\n  \"target_qps\": {:.0},\n  \"achieved_qps\": {:.0},\n",
            "  \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"p999_ms\": {:.3},\n",
            "  \"max_ms\": {:.3},\n",
            "  \"completed\": {},\n  \"rejects\": {},\n  \"io_errors\": {}\n}}\n"
        ),
        addr,
        spec.requests,
        spec.clients,
        spec.rate,
        o.qps(),
        o.pct(0.50),
        o.pct(0.99),
        o.pct(0.999),
        o.max_ms(),
        o.completed(),
        o.rejects,
        o.io_errors
    );
    std::fs::write(out_path, json).expect("write BENCH json");
    println!("\nwrote {out_path}");
}

// ---------------------------------------------------------------------
// BENCH-DIFF — regression gate between two BENCH_*.json files
// ---------------------------------------------------------------------

/// A minimal recursive-descent JSON reader for the flat-ish documents
/// the scenarios emit. Only what the diff needs: objects, arrays,
/// numbers, strings, booleans, null. Numbers flatten to
/// `dotted.path → f64`; everything else is ignored.
struct JsonCur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCur<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!("expected '{}' at byte {}, got {got:?}", b as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    // The scenarios never emit anything beyond \" and \\,
                    // but pass other escapes through rather than erroring.
                    self.pos += 1;
                    if let Some(&e) = self.bytes.get(self.pos) {
                        s.push(e as char);
                        self.pos += 1;
                    }
                }
                Some(b) => {
                    s.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    /// Parse one value, appending any numbers found under `prefix`.
    fn value(&mut self, prefix: &str, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let path = if prefix.is_empty() { key } else { format!("{prefix}.{key}") };
                    self.value(&path, out)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad object at byte {}: {other:?}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{prefix}.{i}"), out)?;
                    i += 1;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad array at byte {}: {other:?}", self.pos)),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') | Some(b'f') | Some(b'n') => {
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_alphabetic()) {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(_) => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 number")?;
                let v: f64 =
                    raw.parse().map_err(|_| format!("bad number '{raw}' at byte {start}"))?;
                out.push((prefix.to_string(), v));
                Ok(())
            }
            None => Err("unexpected end of input".into()),
        }
    }
}

/// Flatten a BENCH_*.json file into sorted `dotted.path → f64` pairs.
fn flatten_bench_json(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut cur = JsonCur { bytes: text.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    if let Err(e) = cur.value("", &mut out) {
        eprintln!("bench-diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// How a metric is judged when it moves between two runs.
#[derive(PartialEq)]
enum MetricClass {
    /// Must not increase at all — allocation and error counts. These
    /// are deterministic properties of the code, not noisy timings.
    Invariant,
    /// Lower is better, compared within the noise band (latencies).
    LowerIsBetter,
    /// Higher is better, compared within the noise band (throughput,
    /// speedup ratios).
    HigherIsBetter,
    /// Reported but never gated (counts, configuration echoes).
    Informational,
}

/// Classify a flattened metric path by its trailing key.
fn classify_metric(path: &str) -> MetricClass {
    let key = path.rsplit('.').next().unwrap_or(path);
    if key.starts_with("allocs")
        || key.ends_with("errors")
        || key == "retry_exhausted"
        || key == "lost_writes"
    {
        MetricClass::Invariant
    } else if key.ends_with("_ms") || key.ends_with("_ns") || key.ends_with("_us") {
        MetricClass::LowerIsBetter
    } else if key.ends_with("qps")
        || key.contains("per_sec")
        || key.contains("speedup")
        || key.ends_with("throughput")
    {
        MetricClass::HigherIsBetter
    } else {
        MetricClass::Informational
    }
}

/// Absolute noise floor for a lower-is-better timing metric, in the
/// metric's own unit (~10 ms). Scheduler jitter swings sub-10 ms tail
/// latencies by several × between otherwise identical runs, so a purely
/// relative band flakes on them; a catastrophic regression (a lost
/// cache, an accidental quadratic) lands far above 10 ms and still
/// fails the banded check.
fn timing_noise_floor(path: &str) -> f64 {
    let key = path.rsplit('.').next().unwrap_or(path);
    if key.ends_with("_ms") {
        10.0
    } else if key.ends_with("_us") {
        10_000.0
    } else {
        // `_ns`
        10_000_000.0
    }
}

/// Compare two scenario JSON files metric by metric. Exit code 0 when
/// every gated metric holds; 1 when anything regressed beyond `band`
/// (a fraction: 0.25 allows 25% drift on timing metrics, on top of the
/// absolute [`timing_noise_floor`] — invariant metrics get no band at
/// all); 2 on unreadable input.
fn bench_diff(old_path: &str, new_path: &str, band: f64) -> i32 {
    println!("\n== BENCH-DIFF — {old_path} → {new_path} (noise band {:.0}%) ==\n", band * 100.0);
    let old = flatten_bench_json(old_path);
    let new = flatten_bench_json(new_path);

    let mut t = Table::new(["metric", "old", "new", "delta", "class", "verdict"]);
    let mut failures = 0usize;
    let lookup = |set: &[(String, f64)], k: &str| {
        set.binary_search_by(|(p, _)| p.as_str().cmp(k)).ok().map(|i| set[i].1)
    };

    for (path, old_v) in &old {
        let Some(new_v) = lookup(&new, path) else {
            // A key the new run no longer emits is a schema regression:
            // the gate cannot silently lose coverage.
            t.row([
                path.clone(),
                format!("{old_v}"),
                "missing".into(),
                "-".into(),
                "-".into(),
                "FAIL".into(),
            ]);
            failures += 1;
            continue;
        };
        let class = classify_metric(path);
        let delta = if *old_v != 0.0 {
            format!("{:+.1}%", (new_v - old_v) / old_v * 100.0)
        } else {
            format!("{new_v:+.3}")
        };
        let (label, ok) = match class {
            MetricClass::Invariant => ("invariant", new_v <= *old_v),
            MetricClass::LowerIsBetter => {
                ("lower", new_v <= old_v * (1.0 + band) + timing_noise_floor(path))
            }
            MetricClass::HigherIsBetter => ("higher", new_v >= old_v * (1.0 - band) - 1e-9),
            MetricClass::Informational => ("info", true),
        };
        if !ok {
            failures += 1;
        }
        // Keep the table to what a reader acts on: every gated metric,
        // plus any informational one that moved.
        if class != MetricClass::Informational || new_v != *old_v {
            t.row([
                path.clone(),
                format!("{old_v:.3}"),
                format!("{new_v:.3}"),
                delta,
                label.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }
    let new_keys = new.iter().filter(|(p, _)| lookup(&old, p).is_none()).count();
    t.print();
    if new_keys > 0 {
        println!("\n{new_keys} metric(s) only in {new_path} (new coverage, not gated)");
    }
    if failures > 0 {
        eprintln!("\nbench-diff: {failures} metric(s) regressed beyond the noise band");
        1
    } else {
        println!("\nbench-diff: all gated metrics within the noise band");
        0
    }
}

/// A1 ablation — FLAT packing strategy: Hilbert vs Morton vs plain
/// coordinate sort. Measures page compactness (surface area → crawl
/// fan-out), neighbor counts and query cost.
fn a1_flat_packing() {
    println!("\n== A1 — FLAT packing-strategy ablation ==\n");
    let circuit = dense_circuit(50, 1);
    let segments = circuit.segments().to_vec();
    let w = standard_workload(&circuit, 30, 20.0);

    let mut t = Table::new([
        "packing",
        "pages",
        "mean neighbors",
        "page surface (norm)",
        "avg pages/query",
        "avg io ms/query",
    ]);
    let mut base_surface = 0.0;
    for packing in
        [PackingStrategy::Hilbert, PackingStrategy::Morton, PackingStrategy::CoordinateSort]
    {
        let idx = FlatIndex::build(
            segments.clone(),
            FlatBuildParams::default().with_page_capacity(64).with_packing(packing),
        );
        let surface: f64 =
            (0..idx.page_count() as u32).map(|p| idx.page_mbr(p).surface_area()).sum();
        if packing == PackingStrategy::Hilbert {
            base_surface = surface;
        }
        let disk = DiskSim::new(u64::MAX, CostModel::default());
        let mut pages = 0u64;
        for q in &w.queries {
            let (_, s) = idx.range_query_with(q, |acc| {
                if let neurospatial::flat::PageAccess::Data(p) = acc {
                    disk.read(PageId(p as u64)).expect("sim disk");
                }
            });
            pages += s.pages_read;
        }
        let n = w.queries.len() as f64;
        t.row([
            format!("{packing:?}"),
            idx.page_count().to_string(),
            f1(idx.mean_neighbors()),
            f2(surface / base_surface),
            f1(pages as f64 / n),
            f2(disk.stats().total_cost_ms / n),
        ]);
    }
    t.print();
    println!("\nshape check: Hilbert pages are the most compact (lowest surface area) and");
    println!("cheapest to query; Morton pays ~20% more I/O at octant boundaries; coordinate-");
    println!("sorted slabs make every query read ~3x more pages — why FLAT uses a");
    println!("space-filling curve.");
}

/// A2 ablation — TOUCH tree fan-out and assignment-depth distribution.
fn a2_touch_fanout() {
    println!("\n== A2 — TOUCH fan-out ablation & assignment depths ==\n");
    let circuit = dense_circuit(100, 3);
    let (a, b) = circuit.split_populations();
    println!("|A| = {}, |B| = {}, ε = 1\n", a.len(), b.len());

    let mut t = Table::new([
        "fanout",
        "total ms",
        "comparisons",
        "filtered out",
        "mean assign depth",
        "depth histogram (d0 d1 d2 …)",
    ]);
    for fanout in [4usize, 16, 64, 128] {
        let join = TouchJoin::default().with_fanout(fanout);
        let (r, report) = join.join_with_report(&a, &b, 1.0);
        let hist: Vec<String> = report.histogram.iter().map(|c| c.to_string()).collect();
        t.row([
            fanout.to_string(),
            f1(r.stats.total_ms),
            r.stats.total_comparisons().to_string(),
            report.filtered_out.to_string(),
            f2(report.mean_depth()),
            hist.join(" "),
        ]);
    }
    t.print();
    println!("\nshape check: comparisons grow with fan-out (bigger leaves mean more");
    println!("leaf-level all-pairs work), so small-to-moderate fan-outs win — TOUCH's");
    println!("default of 16 sits at the knee.");
}

/// A3 ablation — SCOUT vs think-time budget: prefetching can only hide
/// I/O that fits between queries.
fn a3_think_time() {
    println!("\n== A3 — think-time budget ablation (SCOUT) ==\n");
    let circuit = jagged_circuit(20, 9);
    let paths = walkthrough_paths(&circuit, 4);
    let mut t =
        Table::new(["think ms", "stall ms (scout)", "stall ms (none)", "speedup", "prefetched"]);
    for think in [0.0f64, 25.0, 100.0, 400.0, 1600.0] {
        let mut config = walkthrough_config();
        config.think_time_ms = think;
        let session = ExplorationSession::new(circuit.segments().to_vec(), config);
        let (mut scout_stall, mut none_stall, mut prefetched) = (0.0, 0.0, 0u64);
        for p in &paths {
            let mut s = ScoutPrefetcher::default();
            let r = session.run(p, &mut s);
            scout_stall += r.total_stall_ms;
            prefetched += r.total_prefetched;
            none_stall += session.run(p, &mut neurospatial::scout::NoPrefetch).total_stall_ms;
        }
        t.row([
            f1(think),
            f1(scout_stall),
            f1(none_stall),
            format!("{:.1}x", none_stall / scout_stall.max(1e-9)),
            prefetched.to_string(),
        ]);
    }
    t.print();
    println!("\nshape check: zero think time = no benefit; gains saturate once the budget");
    println!("covers one step's worth of pages.");
}

/// A5 ablation — Markov prefetching on repeated paths: history-based
/// prediction *does* work when users retrace known paths; it fails on
/// fresh ones (the paper's point about massive, rarely-revisited models).
fn a5_markov_warmup() {
    println!("\n== A5 — Markov warm-up ablation ==\n");
    let circuit = jagged_circuit(20, 9);
    let session = ExplorationSession::new(circuit.segments().to_vec(), walkthrough_config());
    let paths = walkthrough_paths(&circuit, 3);

    let mut t =
        Table::new(["traversal", "stall ms (markov)", "stall ms (scout)", "markov prefetched"]);
    let mut markov = neurospatial::scout::MarkovPrefetcher::default();
    for round in 0..3 {
        let (mut m_stall, mut m_pref, mut s_stall) = (0.0, 0u64, 0.0);
        for p in &paths {
            let r = session.run(p, &mut markov); // table persists across runs
            m_stall += r.total_stall_ms;
            m_pref += r.total_prefetched;
            let mut scout = ScoutPrefetcher::default();
            s_stall += session.run(p, &mut scout).total_stall_ms;
        }
        t.row([format!("#{}", round + 1), f1(m_stall), f1(s_stall), m_pref.to_string()]);
    }
    t.print();
    println!("\nshape check: Markov is useless on traversal #1 (cold) and competitive once");
    println!("the exact paths repeat — but a scientist exploring a new model never");
    println!("repeats, which is why the paper dismisses history-based prefetching (§3).");
}

/// A4 ablation — buffer pool size: prefetching matters most when the pool
/// cannot hold the walkthrough working set.
fn a4_buffer_size() {
    println!("\n== A4 — buffer-pool size ablation ==\n");
    let circuit = jagged_circuit(20, 9);
    let paths = walkthrough_paths(&circuit, 4);
    let mut t = Table::new(["pool pages", "stall none", "stall scout", "speedup", "hit% none"]);
    for pool in [16usize, 48, 128, 512] {
        let mut config = walkthrough_config();
        config.buffer_pages = pool;
        let session = ExplorationSession::new(circuit.segments().to_vec(), config);
        let (mut none_stall, mut scout_stall, mut hits, mut total) = (0.0, 0.0, 0u64, 0u64);
        for p in &paths {
            let none = session.run(p, &mut neurospatial::scout::NoPrefetch);
            none_stall += none.total_stall_ms;
            hits += none.total_demand_hits;
            total += none.total_demand_hits + none.total_demand_misses;
            let mut s = ScoutPrefetcher::default();
            scout_stall += session.run(p, &mut s).total_stall_ms;
        }
        t.row([
            pool.to_string(),
            f1(none_stall),
            f1(scout_stall),
            format!("{:.1}x", none_stall / scout_stall.max(1e-9)),
            format!("{:.0}%", hits as f64 / total.max(1) as f64 * 100.0),
        ]);
    }
    t.print();
    println!("\nshape check: tiny pools evict prefetched pages before the user reaches");
    println!("them (speedup collapses towards 1x); once the pool holds a step's working");
    println!("set, further memory changes nothing — accuracy, not capacity, is the");
    println!("bottleneck, which is SCOUT's core argument.");
}
