//! Shared workload construction for the experiment harness and the
//! Criterion benches.
//!
//! Everything is deterministic: the same seeds produce the same circuits,
//! workloads and paths on every run and platform (ChaCha8-based
//! generators), so EXPERIMENTS.md numbers are reproducible.

use neurospatial::prelude::*;

/// A circuit whose neurons are packed into a *fixed* tissue volume, so
/// raising the neuron count raises density — the axis of the paper's §2
/// argument.
pub fn dense_circuit(neurons: u32, seed: u64) -> Circuit {
    CircuitBuilder::new(seed)
        .neurons(neurons)
        .volume(Aabb::new(Vec3::ZERO, Vec3::splat(250.0)))
        .morphology(MorphologyParams::small())
        .placement(SomaPlacement::Clustered { count: 5, sigma: 40.0 })
        .build()
}

/// A circuit with jagged, tortuous branches — the geometry §3 says breaks
/// location-only prefetching (persistence lowered, long axons).
pub fn jagged_circuit(neurons: u32, seed: u64) -> Circuit {
    let mut m = MorphologyParams::cortical();
    m.persistence = 0.45; // much more tortuous than the default 0.7
    m.steps_per_section = 16;
    m.branch_probability = 0.5;
    CircuitBuilder::new(seed).neurons(neurons).morphology(m).build()
}

/// A deterministic dataset of (approximately) `n` segments: grow a dense
/// circuit until it holds at least `n`, then truncate. The hotpath
/// scenario uses this so `--n=` controls the dataset size directly
/// instead of through a neuron count.
pub fn sized_segments(n: usize, seed: u64) -> Vec<NeuronSegment> {
    let mut neurons = 4u32;
    loop {
        let circuit = dense_circuit(neurons, seed);
        if circuit.segments().len() >= n || neurons >= 4096 {
            let mut segments = circuit.segments().to_vec();
            segments.truncate(n);
            return segments;
        }
        neurons *= 2;
    }
}

/// The standard data-centred query workload of E1/E2.
pub fn standard_workload(circuit: &Circuit, n: usize, half_extent: f64) -> RangeQueryWorkload {
    RangeQueryWorkload::generate(
        1000,
        &circuit.bounds(),
        n,
        half_extent,
        QueryPlacement::DataCentered,
        Some(circuit.segments()),
    )
}

/// Session configuration used by the E4 walkthroughs: a pool smaller than
/// the walkthrough working set and a disk whose random reads are slow
/// enough that prefetch accuracy dominates stall time.
pub fn walkthrough_config() -> SessionConfig {
    SessionConfig {
        page_capacity: 64,
        // Pool smaller than a walkthrough's working set: pages from a few
        // steps ago get evicted, as on the demo machine where the model
        // dwarfs memory.
        buffer_pages: 48,
        cost: CostModel::default(),
        think_time_ms: 400.0,
    }
}

/// Branch-following paths for E3/E4: moderately overlapping view boxes
/// along jagged branches.
pub fn walkthrough_paths(circuit: &Circuit, count: u64) -> Vec<NavigationPath> {
    // View boxes of half-extent 15 advanced by 22 µm per step: consecutive
    // queries overlap just enough to track the structure (~27 %), so most
    // pages of every step are *new* — the regime where prefetch accuracy,
    // not cache inertia, decides the stall time.
    (0..count * 8)
        .filter_map(|seed| NavigationPath::along_random_branch(circuit, seed, 15.0, 22.0))
        .filter(|p| p.queries.len() >= 14)
        .take(count as usize)
        .collect()
}

/// Simple fixed-width table printer for the experiment binary.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("| {:>w$} ", c, w = widths[i]));
            }
            s.push('|');
            s
        };
        println!("{}", line(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", line(&sep));
        for r in &self.rows {
            println!("{}", line(r));
        }
    }
}

/// Format helpers.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(dense_circuit(5, 1).segments().len(), dense_circuit(5, 1).segments().len());
        let c = jagged_circuit(4, 2);
        assert!(!walkthrough_paths(&c, 2).is_empty());
    }

    #[test]
    fn sized_segments_hits_the_requested_size() {
        let s = sized_segments(1500, 7);
        assert_eq!(s.len(), 1500);
        assert_eq!(s, sized_segments(1500, 7), "deterministic");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.print(); // smoke: no panic on width computation
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }
}
