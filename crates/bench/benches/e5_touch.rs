//! E5 wall-clock companion (demo Figure 7): the join race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurospatial::prelude::*;
use neurospatial_bench::dense_circuit;
use std::hint::black_box;

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_join");
    group.sample_size(10);

    let circuit = dense_circuit(100, 3);
    let (a, b) = circuit.split_populations();
    let eps = 1.0;
    let n = a.len() + b.len();

    group.bench_with_input(BenchmarkId::new("touch", n), &eps, |bch, &eps| {
        bch.iter(|| TouchJoin::default().join(black_box(&a), black_box(&b), eps).pairs.len())
    });
    group.bench_with_input(BenchmarkId::new("touch_parallel4", n), &eps, |bch, &eps| {
        bch.iter(|| TouchJoin::parallel(4).join(black_box(&a), black_box(&b), eps).pairs.len())
    });
    group.bench_with_input(BenchmarkId::new("pbsm", n), &eps, |bch, &eps| {
        bch.iter(|| PbsmJoin::default().join(black_box(&a), black_box(&b), eps).pairs.len())
    });
    group.bench_with_input(BenchmarkId::new("s3", n), &eps, |bch, &eps| {
        bch.iter(|| S3Join::default().join(black_box(&a), black_box(&b), eps).pairs.len())
    });
    group.bench_with_input(BenchmarkId::new("plane_sweep", n), &eps, |bch, &eps| {
        bch.iter(|| PlaneSweepJoin.join(black_box(&a), black_box(&b), eps).pairs.len())
    });
    group.finish();
}

fn bench_epsilon_sweep(c: &mut Criterion) {
    // TOUCH's sensitivity to ε (the join selectivity knob).
    let mut group = c.benchmark_group("e5_touch_epsilon");
    group.sample_size(10);
    let circuit = dense_circuit(60, 3);
    let (a, b) = circuit.split_populations();
    for &eps in &[0.5f64, 2.0, 5.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |bch, &eps| {
            bch.iter(|| TouchJoin::default().join(black_box(&a), black_box(&b), eps).pairs.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins, bench_epsilon_sweep);
criterion_main!(benches);
