//! E1 wall-clock companion (demo Figures 2+3): range-query latency of
//! FLAT vs the STR-packed and dynamic R-Trees across densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurospatial::prelude::*;
use neurospatial_bench::{dense_circuit, standard_workload};
use std::hint::black_box;

fn bench_range_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_range_query");
    group.sample_size(20);

    for &neurons in &[10u32, 50] {
        let circuit = dense_circuit(neurons, 1);
        let segments = circuit.segments().to_vec();
        let n = segments.len();
        let flat =
            FlatIndex::build(segments.clone(), FlatBuildParams::default().with_page_capacity(64));
        let packed = RTree::bulk_load(segments.clone(), RTreeParams::with_max_entries(64));
        let mut dynamic = RTree::new(RTreeParams::with_max_entries(64));
        for s in &segments {
            dynamic.insert(*s);
        }
        let w = standard_workload(&circuit, 20, 20.0);

        group.bench_with_input(BenchmarkId::new("flat", n), &w, |b, w| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &w.queries {
                    total += flat.range_query(black_box(q)).0.len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("rtree_str", n), &w, |b, w| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &w.queries {
                    total += packed.range_query(black_box(q)).0.len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("rtree_dynamic", n), &w, |b, w| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &w.queries {
                    total += dynamic.range_query(black_box(q)).0.len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_index_build");
    group.sample_size(10);
    let circuit = dense_circuit(25, 1);
    let segments = circuit.segments().to_vec();

    group.bench_function("flat_build", |b| {
        b.iter(|| {
            FlatIndex::build(black_box(segments.clone()), FlatBuildParams::default())
                .page_count()
        })
    });
    group.bench_function("rtree_str_bulk_load", |b| {
        b.iter(|| {
            RTree::bulk_load(black_box(segments.clone()), RTreeParams::with_max_entries(64)).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_range_queries, bench_build);
criterion_main!(benches);
