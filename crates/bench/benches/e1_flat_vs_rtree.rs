//! E1 wall-clock companion (demo Figures 2+3): range-query latency of
//! FLAT vs the STR-packed, dynamic and R+ trees across densities —
//! raced through the pluggable [`SpatialIndex`] trait, with a direct
//! (non-virtual) FLAT lane to expose any abstraction overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurospatial::prelude::*;
use neurospatial_bench::{dense_circuit, standard_workload};
use std::hint::black_box;

fn bench_range_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_range_query");
    group.sample_size(20);

    let params = IndexParams::with_page_capacity(64);
    for &neurons in &[10u32, 50] {
        let circuit = dense_circuit(neurons, 1);
        let segments = circuit.segments().to_vec();
        let n = segments.len();
        let w = standard_workload(&circuit, 20, 20.0);

        // Direct lane: the concrete FLAT index with no trait dispatch and
        // no result copy-out — the pre-redesign hot path, kept as the
        // regression baseline for the SpatialIndex abstraction.
        let flat_direct =
            FlatIndex::build(segments.clone(), FlatBuildParams::default().with_page_capacity(64));
        group.bench_with_input(BenchmarkId::new("flat_direct", n), &w, |b, w| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &w.queries {
                    total += flat_direct.range_query(black_box(q)).0.len();
                }
                total
            })
        });

        // Every backend through the one trait, using the buffer-reuse
        // form (`range_query_into`) — the hot-loop API.
        for backend in IndexBackend::ALL {
            let index = backend.build(segments.clone(), &params);
            group.bench_with_input(BenchmarkId::new(backend.name(), n), &w, |b, w| {
                let mut buf = Vec::new();
                b.iter(|| {
                    let mut total = 0usize;
                    for q in &w.queries {
                        buf.clear();
                        index.range_query_into(black_box(q), &mut buf);
                        total += buf.len();
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_index_build");
    group.sample_size(10);
    let circuit = dense_circuit(25, 1);
    let segments = circuit.segments().to_vec();
    let params = IndexParams::with_page_capacity(64);

    for backend in [IndexBackend::Flat, IndexBackend::StrPacked] {
        group.bench_function(format!("{}_build", backend.name()), |b| {
            b.iter(|| backend.build(black_box(segments.clone()), &params).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_queries, bench_build);
criterion_main!(benches);
