//! E4 wall-clock companion (demo Figure 6): full walkthrough replay cost
//! per prefetching method, including skeleton reconstruction overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use neurospatial::prelude::*;
use neurospatial_bench::{jagged_circuit, walkthrough_config, walkthrough_paths};
use std::hint::black_box;

fn bench_walkthrough(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_walkthrough");
    group.sample_size(10);

    let circuit = jagged_circuit(12, 9);
    let session = ExplorationSession::new(circuit.segments().to_vec(), walkthrough_config());
    let paths = walkthrough_paths(&circuit, 3);
    assert!(!paths.is_empty(), "bench workload must produce paths");

    for m in WalkthroughMethod::ALL {
        group.bench_function(format!("{m:?}"), |b| {
            b.iter(|| {
                let mut stall = 0.0;
                for p in &paths {
                    let mut pf = m.prefetcher();
                    stall += session.run(black_box(p), pf.as_mut()).total_stall_ms;
                }
                stall
            })
        });
    }
    group.finish();
}

fn bench_skeleton_reconstruction(c: &mut Criterion) {
    // SCOUT's own overhead must stay far below think time; this measures
    // the skeleton + pruning step in isolation.
    use neurospatial::scout::{Skeleton, SkeletonParams};
    let circuit = jagged_circuit(12, 9);
    let db = NeuroDb::from_circuit(&circuit);
    let q = Aabb::cube(circuit.bounds().center(), 25.0);
    let out = db.range_query(&q);
    let result: Vec<&NeuronSegment> = out.segments.iter().collect();

    let mut group = c.benchmark_group("e4_skeleton");
    group.sample_size(30);
    group.bench_function(format!("reconstruct_{}_segments", result.len()), |b| {
        b.iter(|| {
            Skeleton::reconstruct(black_box(&result), &q, SkeletonParams::default())
                .structures
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walkthrough, bench_skeleton_reconstruction);
criterion_main!(benches);
