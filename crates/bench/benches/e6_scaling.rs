//! E6 wall-clock companion (§1 scaling narrative): index build and query
//! latency as the model grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neurospatial::prelude::*;
use neurospatial_bench::{dense_circuit, standard_workload};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_scaling");
    group.sample_size(10);

    for &neurons in &[10u32, 40, 80] {
        let circuit = dense_circuit(neurons, 11);
        let segments = circuit.segments().to_vec();
        let n = segments.len() as u64;
        group.throughput(Throughput::Elements(n));

        group.bench_with_input(BenchmarkId::new("flat_build", n), &segments, |b, segs| {
            b.iter(|| FlatIndex::build(black_box(segs.clone()), FlatBuildParams::default()).len())
        });

        let flat = FlatIndex::build(segments.clone(), FlatBuildParams::default());
        let w = standard_workload(&circuit, 10, 20.0);
        group.bench_with_input(BenchmarkId::new("flat_query", n), &w, |b, w| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &w.queries {
                    total += flat.range_query(black_box(q)).0.len();
                }
                total
            })
        });

        let (pa, pb) = circuit.split_populations();
        group.bench_with_input(BenchmarkId::new("touch_join", n), &1.5f64, |b, &eps| {
            b.iter(|| TouchJoin::default().join(black_box(&pa), black_box(&pb), eps).pairs.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
