//! R+-Tree-style index (Sellis, Roussopoulos & Faloutsos, VLDB'87) —
//! the overlap-free variant the paper singles out in §2: "the R+-Tree
//! replicates elements to avoid overlap but thereby also increases the
//! index size considerably."
//!
//! Space is partitioned KD-style into *disjoint* regions; an object
//! intersecting several regions is stored in every one of them. Queries
//! never suffer from overlapping subtrees (each point of space belongs to
//! exactly one leaf), but the index grows with the replication factor and
//! results must be de-duplicated — exactly the trade-off the demo paper
//! cites as motivation for FLAT's different approach.

use crate::node::RTreeObject;
use crate::query::QueryStats;
use crate::soa::{TraversalCounters, TraversalScratch};
use neurospatial_geom::{Aabb, Flow};

/// Node id within the R+ arena.
pub type RPlusNodeId = usize;

#[derive(Debug, Clone)]
enum RPlusNode {
    /// Disjoint child regions.
    Inner { region: Aabb, children: Vec<RPlusNodeId> },
    /// Indices into the object store (may contain replicas of objects
    /// also present in sibling leaves).
    Leaf { region: Aabb, objects: Vec<u32> },
}

impl RPlusNode {
    fn region(&self) -> Aabb {
        match self {
            RPlusNode::Inner { region, .. } | RPlusNode::Leaf { region, .. } => *region,
        }
    }
}

/// A static, bulk-built R+-style index.
#[derive(Debug, Clone)]
pub struct RPlusTree<T: RTreeObject> {
    objects: Vec<T>,
    nodes: Vec<RPlusNode>,
    root: RPlusNodeId,
    /// Total leaf entries (≥ `objects.len()` because of replication).
    stored_entries: u64,
    height: usize,
}

impl<T: RTreeObject> RPlusTree<T> {
    /// Bulk-build with at most `leaf_capacity` entries per leaf (leaves
    /// holding objects that cannot be separated by any axis cut may
    /// exceed it — replication cannot split an object).
    pub fn build(objects: Vec<T>, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 1);
        let bounds = objects.iter().fold(Aabb::EMPTY, |a, o| a.union(&o.aabb()));
        let mut tree =
            RPlusTree { nodes: Vec::new(), root: 0, stored_entries: 0, height: 1, objects };
        if tree.objects.is_empty() {
            tree.nodes.push(RPlusNode::Leaf { region: Aabb::EMPTY, objects: Vec::new() });
            return tree;
        }
        let all: Vec<u32> = (0..tree.objects.len() as u32).collect();
        let (root, height) = tree.split_region(bounds, all, leaf_capacity, 1);
        tree.root = root;
        tree.height = height;
        tree
    }

    /// Recursive KD partition of `region`; returns (node id, subtree height).
    fn split_region(
        &mut self,
        region: Aabb,
        members: Vec<u32>,
        cap: usize,
        depth: usize,
    ) -> (RPlusNodeId, usize) {
        // Depth guard: pathological data (everything coincident) cannot be
        // separated — force an oversized leaf rather than recursing forever.
        if members.len() <= cap || depth > 48 {
            self.stored_entries += members.len() as u64;
            self.nodes.push(RPlusNode::Leaf { region, objects: members });
            return (self.nodes.len() - 1, 1);
        }

        // Cut at the median object centre along the region's longest axis.
        let axis = region.longest_axis();
        let mut centers: Vec<f64> =
            members.iter().map(|&i| self.objects[i as usize].aabb().center().axis(axis)).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut cut = centers[centers.len() / 2];
        // Clamp strictly inside the region so both halves are non-empty
        // volumes; nudge off the boundary if the median sits on it.
        let (lo, hi) = (region.lo.axis(axis), region.hi.axis(axis));
        if cut <= lo || cut >= hi {
            cut = 0.5 * (lo + hi);
        }

        let mut left_region = region;
        left_region.hi.set_axis(axis, cut);
        let mut right_region = region;
        right_region.lo.set_axis(axis, cut);

        // Distribute members; objects strictly spanning the cut are
        // *replicated*. The assignment is half-open (an object touching
        // the plane with zero extent goes right only) so point data on
        // cut planes is not duplicated; queries remain exact because the
        // regions themselves stay closed — a query touching the plane
        // descends into both halves.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &i in &members {
            let bb = self.objects[i as usize].aabb();
            if bb.lo.axis(axis) < cut {
                left.push(i);
            }
            if bb.hi.axis(axis) >= cut {
                right.push(i);
            }
        }
        // Degenerate cut (everything straddles): force a leaf.
        if left.len() == members.len() && right.len() == members.len() {
            self.stored_entries += members.len() as u64;
            self.nodes.push(RPlusNode::Leaf { region, objects: members });
            return (self.nodes.len() - 1, 1);
        }

        let (lid, lh) = self.split_region(left_region, left, cap, depth + 1);
        let (rid, rh) = self.split_region(right_region, right, cap, depth + 1);
        self.nodes.push(RPlusNode::Inner { region, children: vec![lid, rid] });
        (self.nodes.len() - 1, 1 + lh.max(rh))
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Bounding region of the root (`Aabb::EMPTY` when the tree is empty).
    pub fn bounds(&self) -> Aabb {
        self.nodes[self.root].region()
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf entries stored, including replicas.
    pub fn stored_entries(&self) -> u64 {
        self.stored_entries
    }

    /// Replication factor: stored entries / distinct objects (≥ 1) — the
    /// "index size" cost the paper attributes to the R+-Tree.
    pub fn replication_factor(&self) -> f64 {
        if self.objects.is_empty() {
            return 1.0;
        }
        self.stored_entries as f64 / self.objects.len() as f64
    }

    /// Range query: every object whose AABB intersects `q`, each reported
    /// once (replicas de-duplicated with a visit mask).
    pub fn range_query(&self, q: &Aabb) -> (Vec<&T>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        if self.objects.is_empty() || !self.nodes[self.root].region().intersects(q) {
            return (out, stats);
        }
        stats.nodes_per_level.resize(self.height, 0);
        let mut emitted = vec![false; self.objects.len()];
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, level)) = stack.pop() {
            if stats.nodes_per_level.len() <= level {
                stats.nodes_per_level.resize(level + 1, 0);
            }
            stats.nodes_per_level[level] += 1;
            match &self.nodes[id] {
                RPlusNode::Leaf { objects, .. } => {
                    for &i in objects {
                        stats.leaf_entries_tested += 1;
                        if !emitted[i as usize] && self.objects[i as usize].aabb().intersects(q) {
                            emitted[i as usize] = true;
                            out.push(&self.objects[i as usize]);
                        }
                    }
                }
                RPlusNode::Inner { children, .. } => {
                    for &c in children {
                        if self.nodes[c].region().intersects(q) {
                            stack.push((c, level + 1));
                        }
                    }
                }
            }
        }
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// Allocation-free range query: replica de-duplication uses the
    /// scratch's epoch-stamped marks (O(1) to reset between queries)
    /// instead of a fresh `vec![false; n]`, and the traversal stack is
    /// reused. Visits, tests, results and emission order are identical
    /// to [`range_query`](Self::range_query).
    pub fn range_query_scratch<'a, S: FnMut(&'a T)>(
        &'a self,
        q: &Aabb,
        scratch: &mut TraversalScratch,
        mut sink: S,
    ) -> TraversalCounters {
        self.range_query_stream(q, scratch, |o| {
            sink(o);
            Flow::Emit
        })
    }

    /// Flow-controlled streaming range query — the traversal behind
    /// [`range_query_scratch`](Self::range_query_scratch). Each distinct
    /// object is offered to the sink at most once (replicas are
    /// de-duplicated *before* the verdict, so a predicate runs once per
    /// object); [`Flow::Skip`] rejects it, [`Flow::Last`] counts it and
    /// stops the traversal. With an always-`Emit` sink the visits, tests,
    /// results and emission order match [`range_query`](Self::range_query).
    pub fn range_query_stream<'a, S: FnMut(&'a T) -> Flow>(
        &'a self,
        q: &Aabb,
        scratch: &mut TraversalScratch,
        mut sink: S,
    ) -> TraversalCounters {
        let mut c = TraversalCounters::default();
        if self.objects.is_empty() || !self.nodes[self.root].region().intersects(q) {
            return c;
        }
        scratch.dedup.begin(self.objects.len());
        scratch.stack.clear();
        scratch.stack.push(self.root as u32);
        while let Some(id) = scratch.stack.pop() {
            c.nodes_visited += 1;
            match &self.nodes[id as usize] {
                RPlusNode::Leaf { objects, .. } => {
                    for &i in objects {
                        c.leaf_entries_tested += 1;
                        if !scratch.dedup.is_marked(i as usize)
                            && self.objects[i as usize].aabb().intersects(q)
                        {
                            scratch.dedup.mark(i as usize);
                            match sink(&self.objects[i as usize]) {
                                Flow::Emit => c.results += 1,
                                Flow::Skip => {}
                                Flow::Last => {
                                    c.results += 1;
                                    return c;
                                }
                            }
                        }
                    }
                }
                RPlusNode::Inner { children, .. } => {
                    for &ch in children {
                        if self.nodes[ch].region().intersects(q) {
                            scratch.stack.push(ch as u32);
                        }
                    }
                }
            }
        }
        c
    }

    /// Verify the R+ invariant: sibling regions are interior-disjoint and
    /// children tile their parent.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            if let RPlusNode::Inner { region, children } = n {
                for (a, &ca) in children.iter().enumerate() {
                    let ra = self.nodes[ca].region();
                    if !region.contains(&ra) && !ra.is_empty() {
                        return Err(format!("node {id}: child {ca} region escapes parent"));
                    }
                    for &cb in children.iter().skip(a + 1) {
                        let rb = self.nodes[cb].region();
                        let ov = ra.overlap_volume(&rb);
                        if ov > 1e-9 {
                            return Err(format!("node {id}: children {ca},{cb} overlap by {ov}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;

    fn overlapping_boxes(n: usize) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = ((i / 20) % 20) as f64;
                let z = (i / 400) as f64;
                Aabb::cube(Vec3::new(x, y, z), 0.9) // heavy mutual overlap
            })
            .collect()
    }

    #[test]
    fn exact_results_with_dedup() {
        let objs = overlapping_boxes(2000);
        let t = RPlusTree::build(objs.clone(), 16);
        t.validate().unwrap();
        for q in [
            Aabb::cube(Vec3::new(10.0, 10.0, 2.0), 3.0),
            Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 1.0),
            Aabb::new(Vec3::splat(-10.0), Vec3::splat(50.0)),
            Aabb::cube(Vec3::new(500.0, 0.0, 0.0), 5.0),
        ] {
            let (hits, stats) = t.range_query(&q);
            let want = objs.iter().filter(|o| o.intersects(&q)).count();
            assert_eq!(hits.len(), want, "query {q}");
            assert_eq!(stats.results as usize, want);
        }
    }

    #[test]
    fn replication_increases_index_size() {
        // The paper's point: on overlapping data the R+-Tree stores
        // considerably more entries than there are objects.
        let t = RPlusTree::build(overlapping_boxes(3000), 16);
        assert!(
            t.replication_factor() > 1.2,
            "expected visible replication, got {}",
            t.replication_factor()
        );
        assert!(t.stored_entries() > 3000);
    }

    #[test]
    fn point_data_needs_no_replication() {
        let objs: Vec<Aabb> = (0..500)
            .map(|i| Aabb::point(Vec3::new((i % 25) as f64 * 3.0, (i / 25) as f64 * 3.0, 0.0)))
            .collect();
        let t = RPlusTree::build(objs, 8);
        // Points on a grid may sit exactly on cut planes and be kept in
        // both halves; the factor stays near 1.
        assert!(t.replication_factor() < 1.2, "got {}", t.replication_factor());
        t.validate().unwrap();
    }

    #[test]
    fn empty_and_degenerate() {
        let e: RPlusTree<Aabb> = RPlusTree::build(vec![], 8);
        assert!(e.is_empty());
        assert!(e.range_query(&Aabb::cube(Vec3::ZERO, 1.0)).0.is_empty());

        // All-coincident objects cannot be separated: depth guard forces
        // an oversized leaf, queries stay exact.
        let same: Vec<Aabb> = (0..100).map(|_| Aabb::cube(Vec3::ONE, 1.0)).collect();
        let t = RPlusTree::build(same, 8);
        let (hits, _) = t.range_query(&Aabb::cube(Vec3::ONE, 0.5));
        assert_eq!(hits.len(), 100);
        t.validate().unwrap();
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let t = RPlusTree::build(overlapping_boxes(1500), 16);
        let mut scratch = TraversalScratch::default();
        // Repeated reuse of one scratch across many queries: the epoch
        // trick must keep de-duplication exact on every pass.
        for pass in 0..3 {
            for q in [
                Aabb::cube(Vec3::new(10.0, 10.0, 2.0), 3.0),
                Aabb::new(Vec3::splat(-10.0), Vec3::splat(50.0)),
                Aabb::cube(Vec3::new(500.0, 0.0, 0.0), 5.0), // empty
            ] {
                let (want, stats) = t.range_query(&q);
                let mut got: Vec<&Aabb> = Vec::new();
                let c = t.range_query_scratch(&q, &mut scratch, |o| got.push(o));
                assert_eq!(got.len(), want.len(), "pass={pass} at {q}");
                assert!(got.iter().zip(&want).all(|(a, b)| std::ptr::eq(*a, *b)), "order");
                assert_eq!(c.nodes_visited, stats.nodes_visited(), "pass={pass} at {q}");
                assert_eq!(c.leaf_entries_tested, stats.leaf_entries_tested);
                assert_eq!(c.results, stats.results);
            }
        }
    }

    #[test]
    fn no_duplicates_in_results() {
        let objs: Vec<Aabb> =
            (0..200).map(|i| Aabb::cube(Vec3::new(i as f64 * 0.3, 0.0, 0.0), 5.0)).collect();
        let t = RPlusTree::build(objs, 4);
        assert!(t.replication_factor() > 1.5, "long boxes replicate heavily");
        let (hits, _) = t.range_query(&Aabb::cube(Vec3::new(30.0, 0.0, 0.0), 10.0));
        let mut ptrs: Vec<*const Aabb> = hits.iter().map(|h| *h as *const Aabb).collect();
        ptrs.sort();
        let n = ptrs.len();
        ptrs.dedup();
        assert_eq!(ptrs.len(), n, "an object was reported twice");
    }
}
