//! Dynamic insertion: Guttman's ChooseLeaf + overflow splits.
//!
//! Three split strategies are provided (linear, quadratic, R*-topological)
//! so the experiments can reproduce the "R-Trees and variants" family the
//! paper says degrade on dense data (§2). Dynamic trees accumulate far
//! more overlap than STR-packed ones — E1/E2 quantify exactly that.

use crate::node::{Node, NodeKind, RTreeObject};
use crate::params::SplitStrategy;
use crate::{NodeId, RTree};
use neurospatial_geom::Aabb;

impl<T: RTreeObject> RTree<T> {
    /// Insert one object. Drops the frozen SoA traversal layout (rebuild
    /// with [`RTree::freeze`] once the batch of mutations is done).
    pub fn insert(&mut self, obj: T) {
        self.soa = None;
        let bb = obj.aabb();
        debug_assert!(bb.is_valid(), "object AABB must be valid");
        let leaf = self.choose_leaf(bb);
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf(items) => items.push(obj),
            NodeKind::Inner(_) => unreachable!("choose_leaf returns a leaf"),
        }
        self.nodes[leaf].mbr = self.nodes[leaf].mbr.union(&bb);
        self.len += 1;
        self.handle_overflow(leaf);
        self.propagate_mbr(self.nodes[leaf].parent);
    }

    /// Descend from the root picking the child needing least enlargement
    /// (ties: smaller volume, then fewer entries).
    fn choose_leaf(&self, bb: Aabb) -> NodeId {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur].kind {
                NodeKind::Leaf(_) => return cur,
                NodeKind::Inner(children) => {
                    debug_assert!(!children.is_empty(), "inner node with no children");
                    let mut best = children[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_vol = f64::INFINITY;
                    for &c in children {
                        let m = self.nodes[c].mbr;
                        let enl = m.enlargement(&bb);
                        let vol = m.volume();
                        if enl < best_enl - 1e-12
                            || ((enl - best_enl).abs() <= 1e-12 && vol < best_vol)
                        {
                            best = c;
                            best_enl = enl;
                            best_vol = vol;
                        }
                    }
                    cur = best;
                }
            }
        }
    }

    /// Split `node` if it exceeds the fan-out, propagating upwards.
    fn handle_overflow(&mut self, mut node: NodeId) {
        while self.nodes[node].entry_count() > self.params.max_entries {
            let parent = self.nodes[node].parent;
            let sibling = self.split_node(node);

            match parent {
                Some(p) => {
                    self.nodes[sibling].parent = Some(p);
                    match &mut self.nodes[p].kind {
                        NodeKind::Inner(ch) => ch.push(sibling),
                        NodeKind::Leaf(_) => unreachable!("parent of a node is inner"),
                    }
                    self.recompute_mbr(p);
                    node = p;
                }
                None => {
                    // Root split: grow the tree.
                    let new_root = self.alloc(Node::new_inner());
                    self.nodes[new_root].kind = NodeKind::Inner(vec![node, sibling]);
                    self.nodes[node].parent = Some(new_root);
                    self.nodes[sibling].parent = Some(new_root);
                    self.recompute_mbr(new_root);
                    self.root = new_root;
                    self.height += 1;
                    return;
                }
            }
        }
    }

    /// Split the entries of `node` in two; `node` keeps group A, the
    /// returned sibling holds group B.
    fn split_node(&mut self, node: NodeId) -> NodeId {
        let strategy = self.params.split;
        let min = self.params.min_entries;
        match std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(items) => {
                let boxes: Vec<Aabb> = items.iter().map(|o| o.aabb()).collect();
                let (ga, gb) = split_groups(&boxes, min, strategy);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                let mut in_a = vec![false; boxes.len()];
                for &i in &ga {
                    in_a[i] = true;
                }
                for (i, o) in items.into_iter().enumerate() {
                    if in_a[i] {
                        a.push(o);
                    } else {
                        b.push(o);
                    }
                }
                let sibling = self.alloc(Node::new_leaf());
                self.nodes[node].kind = NodeKind::Leaf(a);
                self.nodes[sibling].kind = NodeKind::Leaf(b);
                self.recompute_mbr(node);
                self.recompute_mbr(sibling);
                let _ = gb;
                sibling
            }
            NodeKind::Inner(children) => {
                let boxes: Vec<Aabb> = children.iter().map(|&c| self.nodes[c].mbr).collect();
                let (ga, _) = split_groups(&boxes, min, strategy);
                let mut in_a = vec![false; boxes.len()];
                for &i in &ga {
                    in_a[i] = true;
                }
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for (i, c) in children.into_iter().enumerate() {
                    if in_a[i] {
                        a.push(c);
                    } else {
                        b.push(c);
                    }
                }
                let sibling = self.alloc(Node::new_inner());
                for &c in &b {
                    self.nodes[c].parent = Some(sibling);
                }
                self.nodes[node].kind = NodeKind::Inner(a);
                self.nodes[sibling].kind = NodeKind::Inner(b);
                self.recompute_mbr(node);
                self.recompute_mbr(sibling);
                sibling
            }
        }
    }

    /// Allocate an arena slot, reusing freed ones.
    pub(crate) fn alloc(&mut self, n: Node<T>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = n;
            id
        } else {
            self.nodes.push(n);
            self.nodes.len() - 1
        }
    }

    /// Recompute a node's MBR from its entries.
    pub(crate) fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.nodes[id].kind {
            NodeKind::Leaf(items) => items.iter().fold(Aabb::EMPTY, |a, o| a.union(&o.aabb())),
            NodeKind::Inner(children) => {
                children.iter().fold(Aabb::EMPTY, |a, &c| a.union(&self.nodes[c].mbr))
            }
        };
        self.nodes[id].mbr = mbr;
    }

    /// Recompute MBRs from `from` up to the root.
    pub(crate) fn propagate_mbr(&mut self, mut from: Option<NodeId>) {
        while let Some(id) = from {
            self.recompute_mbr(id);
            from = self.nodes[id].parent;
        }
    }
}

/// Partition `boxes` (indices) into two groups, each of size ≥ `min`.
pub(crate) fn split_groups(
    boxes: &[Aabb],
    min: usize,
    strategy: SplitStrategy,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(boxes.len() >= 2 * min, "not enough entries to split");
    match strategy {
        SplitStrategy::Linear => linear_split(boxes, min),
        SplitStrategy::Quadratic => quadratic_split(boxes, min),
        SplitStrategy::RStar => rstar_split(boxes, min),
    }
}

/// Guttman linear: seeds are the pair with greatest normalised separation;
/// the rest are assigned greedily by least enlargement.
fn linear_split(boxes: &[Aabb], min: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    // Find, per axis, the box with the highest low side and the box with
    // the lowest high side; normalise the separation by the axis width.
    let mut best_axis_sep = -1.0f64;
    let mut seeds = (0usize, 1usize);
    for axis in 0..3 {
        let (mut lo_hi, mut lo_hi_i) = (f64::INFINITY, 0usize); // lowest high side
        let (mut hi_lo, mut hi_lo_i) = (f64::NEG_INFINITY, 0usize); // highest low side
        let (mut amin, mut amax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, b) in boxes.iter().enumerate() {
            if b.hi.axis(axis) < lo_hi {
                lo_hi = b.hi.axis(axis);
                lo_hi_i = i;
            }
            if b.lo.axis(axis) > hi_lo {
                hi_lo = b.lo.axis(axis);
                hi_lo_i = i;
            }
            amin = amin.min(b.lo.axis(axis));
            amax = amax.max(b.hi.axis(axis));
        }
        let width = (amax - amin).max(1e-12);
        let sep = (hi_lo - lo_hi) / width;
        if sep > best_axis_sep && lo_hi_i != hi_lo_i {
            best_axis_sep = sep;
            seeds = (lo_hi_i, hi_lo_i);
        }
    }
    if seeds.0 == seeds.1 {
        seeds = (0, n - 1); // fully degenerate (all identical boxes)
    }
    distribute_remaining(boxes, seeds, min)
}

/// Guttman quadratic: seeds are the pair wasting the most area if grouped;
/// remaining entries go to the group with the strongest preference.
fn quadratic_split(boxes: &[Aabb], min: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    let mut seeds = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in i + 1..n {
            let waste = boxes[i].union(&boxes[j]).volume() - boxes[i].volume() - boxes[j].volume();
            if waste > worst {
                worst = waste;
                seeds = (i, j);
            }
        }
    }
    distribute_remaining(boxes, seeds, min)
}

/// Greedy distribution used by both Guttman variants.
fn distribute_remaining(
    boxes: &[Aabb],
    seeds: (usize, usize),
    min: usize,
) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    let (mut a, mut b) = (vec![seeds.0], vec![seeds.1]);
    let mut mbr_a = boxes[seeds.0];
    let mut mbr_b = boxes[seeds.1];
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != seeds.0 && i != seeds.1).collect();

    while let Some(pos) = pick_next(&rest, boxes, &mbr_a, &mbr_b) {
        let i = rest.swap_remove(pos);
        // Force-assign to honour the minimum fill.
        let need_a = min.saturating_sub(a.len());
        let need_b = min.saturating_sub(b.len());
        let remaining = rest.len() + 1;
        let to_a = if need_a >= remaining {
            true
        } else if need_b >= remaining {
            false
        } else {
            let ea = mbr_a.enlargement(&boxes[i]);
            let eb = mbr_b.enlargement(&boxes[i]);
            if (ea - eb).abs() > 1e-12 {
                ea < eb
            } else if (mbr_a.volume() - mbr_b.volume()).abs() > 1e-12 {
                mbr_a.volume() < mbr_b.volume()
            } else {
                a.len() <= b.len()
            }
        };
        if to_a {
            a.push(i);
            mbr_a = mbr_a.union(&boxes[i]);
        } else {
            b.push(i);
            mbr_b = mbr_b.union(&boxes[i]);
        }
    }
    (a, b)
}

/// PickNext of the quadratic algorithm: the entry with the largest
/// preference difference. (Also reused by the linear variant, where
/// Guttman allows any order — the shared implementation keeps behaviour
/// deterministic.)
fn pick_next(rest: &[usize], boxes: &[Aabb], mbr_a: &Aabb, mbr_b: &Aabb) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_diff = -1.0f64;
    for (pos, &i) in rest.iter().enumerate() {
        let d = (mbr_a.enlargement(&boxes[i]) - mbr_b.enlargement(&boxes[i])).abs();
        if d > best_diff {
            best_diff = d;
            best = pos;
        }
    }
    Some(best)
}

/// R*-style topological split: for each axis, sort entries by lower then
/// upper bound; evaluate all legal distributions; pick the axis with the
/// least total margin, then the distribution with the least overlap
/// (ties: least total volume).
fn rstar_split(boxes: &[Aabb], min: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    let mut best: Option<(f64, f64, Vec<usize>, Vec<usize>)> = None; // (overlap, volume, a, b)
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;

    // Choose the split axis by total margin of all candidate distributions.
    let mut per_axis_orders: Vec<Vec<Vec<usize>>> = Vec::with_capacity(3);
    for axis in 0..3 {
        let mut by_lo: Vec<usize> = (0..n).collect();
        by_lo.sort_by(|&x, &y| {
            boxes[x].lo.axis(axis).partial_cmp(&boxes[y].lo.axis(axis)).expect("finite")
        });
        let mut by_hi: Vec<usize> = (0..n).collect();
        by_hi.sort_by(|&x, &y| {
            boxes[x].hi.axis(axis).partial_cmp(&boxes[y].hi.axis(axis)).expect("finite")
        });
        let mut margin_sum = 0.0;
        for order in [&by_lo, &by_hi] {
            for k in min..=(n - min) {
                let ma = order[..k].iter().fold(Aabb::EMPTY, |m, &i| m.union(&boxes[i]));
                let mb = order[k..].iter().fold(Aabb::EMPTY, |m, &i| m.union(&boxes[i]));
                margin_sum += ma.margin() + mb.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
        per_axis_orders.push(vec![by_lo, by_hi]);
    }

    for order in &per_axis_orders[best_axis] {
        for k in min..=(n - min) {
            let (ga, gb) = (&order[..k], &order[k..]);
            let ma = ga.iter().fold(Aabb::EMPTY, |m, &i| m.union(&boxes[i]));
            let mb = gb.iter().fold(Aabb::EMPTY, |m, &i| m.union(&boxes[i]));
            let overlap = ma.overlap_volume(&mb);
            let vol = ma.volume() + mb.volume();
            let better = match &best {
                None => true,
                Some((bo, bv, _, _)) => {
                    overlap < bo - 1e-12 || ((overlap - bo).abs() <= 1e-12 && vol < *bv)
                }
            };
            if better {
                best = Some((overlap, vol, ga.to_vec(), gb.to_vec()));
            }
        }
    }
    let (_, _, a, b) = best.expect("at least one distribution exists");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::validate;
    use crate::RTreeParams;
    use neurospatial_geom::Vec3;

    fn boxes_grid(n: usize) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 2.0;
                let y = ((i / 10) % 10) as f64 * 2.0;
                let z = (i / 100) as f64 * 2.0;
                Aabb::cube(Vec3::new(x, y, z), 0.6)
            })
            .collect()
    }

    #[test]
    fn insert_grows_tree_for_all_strategies() {
        for s in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            let mut t = RTree::new(RTreeParams::with_max_entries(8).with_split(s));
            for b in boxes_grid(300) {
                t.insert(b);
            }
            assert_eq!(t.len(), 300, "{s:?}");
            assert!(t.height() >= 3, "{s:?} height={}", t.height());
            validate(&t).unwrap();
        }
    }

    #[test]
    fn mbrs_stay_tight_after_inserts() {
        let mut t = RTree::new(RTreeParams::with_max_entries(8));
        for b in boxes_grid(120) {
            t.insert(b);
        }
        // Root MBR equals union of all objects.
        let want = boxes_grid(120).iter().fold(Aabb::EMPTY, |a, b| a.union(b));
        assert_eq!(t.root_mbr(), want);
    }

    #[test]
    fn split_groups_respect_min_fill() {
        let bs = boxes_grid(20);
        for s in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            let (a, b) = split_groups(&bs, 8, s);
            assert!(a.len() >= 8, "{s:?}: |A|={}", a.len());
            assert!(b.len() >= 8, "{s:?}: |B|={}", b.len());
            assert_eq!(a.len() + b.len(), 20);
            // Partition: no duplicates across groups.
            let mut all: Vec<usize> = a.iter().chain(&b).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 20);
        }
    }

    #[test]
    fn split_handles_identical_boxes() {
        let bs: Vec<Aabb> = (0..10).map(|_| Aabb::cube(Vec3::ONE, 1.0)).collect();
        for s in [SplitStrategy::Linear, SplitStrategy::Quadratic, SplitStrategy::RStar] {
            let (a, b) = split_groups(&bs, 4, s);
            assert_eq!(a.len() + b.len(), 10, "{s:?}");
            assert!(a.len() >= 4 && b.len() >= 4, "{s:?}");
        }
    }

    #[test]
    fn rstar_split_beats_linear_on_overlap() {
        // Two well-separated clusters with an interleaved index order:
        // R* must find the clean axis cut.
        let mut bs = Vec::new();
        for i in 0..10 {
            bs.push(Aabb::cube(Vec3::new(i as f64 * 0.1, 0.0, 0.0), 0.3));
            bs.push(Aabb::cube(Vec3::new(100.0 + i as f64 * 0.1, 0.0, 0.0), 0.3));
        }
        let (a, _) = split_groups(&bs, 5, SplitStrategy::RStar);
        let ma = a.iter().fold(Aabb::EMPTY, |m, &i| m.union(&bs[i]));
        // Group A is entirely one cluster (width ~1.5, not ~101).
        assert!(ma.extent().x < 10.0, "R* split mixed the clusters: {}", ma.extent().x);
    }

    #[test]
    fn dense_data_overlaps_regardless_of_build_method() {
        // The paper's core observation (§2): on dense data *any* R-Tree
        // accumulates leaf overlap — STR packing does not remove it, it is
        // a property of the data. Both builds must also answer queries
        // identically.
        let objs: Vec<Aabb> = (0..3000)
            .map(|i| {
                // Dense: heavily overlapping boxes on a spiral.
                let f = i as f64 * 0.01;
                Aabb::cube(Vec3::new(f.sin() * 10.0, f.cos() * 10.0, (i % 100) as f64 * 0.2), 1.5)
            })
            .collect();
        let mut dynamic = RTree::new(RTreeParams::with_max_entries(16));
        for o in objs.clone() {
            dynamic.insert(o);
        }
        let packed = RTree::bulk_load(objs, RTreeParams::with_max_entries(16));
        assert!(dynamic.total_leaf_overlap() > 0.0);
        assert!(packed.total_leaf_overlap() > 0.0);
        // Sum of leaf volumes far exceeds the domain volume => dead space
        // + overlap, the pathology FLAT sidesteps.
        assert!(dynamic.total_leaf_volume() > dynamic.root_mbr().volume());
        let q = Aabb::cube(Vec3::new(5.0, 5.0, 10.0), 3.0);
        let (h1, _) = dynamic.range_query(&q);
        let (h2, _) = packed.range_query(&q);
        assert_eq!(h1.len(), h2.len());
    }
}
