//! Instrumented query execution.
//!
//! Every traversal reports node accesses per level because that is the
//! statistic the demo displays to explain the R-Tree's behaviour on dense
//! data: "due to overlap more nodes are retrieved on higher levels"
//! (§2.2). A visitor hook exposes each visited node id so callers can
//! charge simulated page reads.

use crate::node::{NodeKind, RTreeObject};
use crate::soa::{TraversalCounters, TraversalScratch};
use crate::{NodeId, RTree};
use neurospatial_geom::{Aabb, Flow, Vec3};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-query traversal statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Nodes visited at each level; index 0 is the root level.
    pub nodes_per_level: Vec<u64>,
    /// Leaf objects whose AABBs were tested against the query.
    pub leaf_entries_tested: u64,
    /// Objects returned.
    pub results: u64,
}

impl QueryStats {
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }

    fn bump(&mut self, level: usize) {
        // Guard only: every query pre-sizes the vector to the tree height
        // up front (`presize`), so the hot path never reallocates here.
        if self.nodes_per_level.len() <= level {
            self.nodes_per_level.resize(level + 1, 0);
        }
        self.nodes_per_level[level] += 1;
    }

    /// Size the per-level counters to the tree height once, at query
    /// start, instead of growing the vector visit by visit.
    fn presize(&mut self, height: usize) {
        self.nodes_per_level.resize(height, 0);
    }
}

/// One k-nearest-neighbour result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnResult<'a, T> {
    pub object: &'a T,
    /// Distance from the query point to the object's AABB.
    pub distance: f64,
}

/// Max-heap entry ordered by *minimum* distance (reversed for BinaryHeap).
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, o: &Self) -> bool {
        // Consistent with the `Ord` below (total order, NaN-safe).
        self.dist.total_cmp(&o.dist) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, o: &Self) -> Ordering {
        // Reverse: smallest distance first. `total_cmp` (not
        // `partial_cmp(..).unwrap_or(Equal)`): a NaN distance — e.g. from
        // a degenerate `Aabb::EMPTY` MBR, whose infinities cancel in the
        // distance arithmetic — must not compare `Equal` to everything,
        // which would silently corrupt the heap's ordering invariant. In
        // the IEEE total order NaN sorts above +∞, so NaN entries sink to
        // the back of the frontier instead of scrambling it.
        o.dist.total_cmp(&self.dist)
    }
}

impl<T: RTreeObject> RTree<T> {
    /// All objects whose AABB intersects `q`, plus traversal statistics.
    pub fn range_query(&self, q: &Aabb) -> (Vec<&T>, QueryStats) {
        self.range_query_with(q, |_, _| {})
    }

    /// Range query with a node-visit hook `(node id, level)` — level 0 is
    /// the root. The hook fires once per node whose MBR intersects the
    /// query (i.e. per simulated page read).
    pub fn range_query_with<F: FnMut(NodeId, usize)>(
        &self,
        q: &Aabb,
        mut on_visit: F,
    ) -> (Vec<&T>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        if self.is_empty() || !self.nodes[self.root].mbr.intersects(q) {
            return (out, stats);
        }
        stats.presize(self.height);
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some((id, level)) = stack.pop() {
            stats.bump(level);
            on_visit(id, level);
            match &self.nodes[id].kind {
                NodeKind::Leaf(items) => {
                    for o in items {
                        stats.leaf_entries_tested += 1;
                        if o.aabb().intersects(q) {
                            out.push(o);
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if self.nodes[c].mbr.intersects(q) {
                            stack.push((c, level + 1));
                        }
                    }
                }
            }
        }
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// FLAT's seed phase: descend to find *one* object intersecting `q`,
    /// abandoning subtrees as soon as a hit is found. Depth-first with
    /// best-first child ordering (children whose MBR centre is closest to
    /// the query centre first) — cheap and typically O(height) on dense
    /// data.
    pub fn first_hit(&self, q: &Aabb) -> (Option<&T>, QueryStats) {
        self.first_hit_with(q, |_, _| {})
    }

    /// [`Self::first_hit`] with a node-visit hook.
    pub fn first_hit_with<F: FnMut(NodeId, usize)>(
        &self,
        q: &Aabb,
        mut on_visit: F,
    ) -> (Option<&T>, QueryStats) {
        let mut stats = QueryStats::default();
        if self.is_empty() || !self.nodes[self.root].mbr.intersects(q) {
            return (None, stats);
        }
        stats.presize(self.height);
        let qc = q.center();
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        while let Some((id, level)) = stack.pop() {
            stats.bump(level);
            on_visit(id, level);
            match &self.nodes[id].kind {
                NodeKind::Leaf(items) => {
                    for o in items {
                        stats.leaf_entries_tested += 1;
                        if o.aabb().intersects(q) {
                            stats.results = 1;
                            return (Some(o), stats);
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    // Push farthest-first so the closest child pops first.
                    let mut cand: Vec<NodeId> = children
                        .iter()
                        .copied()
                        .filter(|&c| self.nodes[c].mbr.intersects(q))
                        .collect();
                    cand.sort_by(|&a, &b| {
                        let da = self.nodes[a].mbr.center().distance_sq(qc);
                        let db = self.nodes[b].mbr.center().distance_sq(qc);
                        db.partial_cmp(&da).unwrap_or(Ordering::Equal)
                    });
                    for c in cand {
                        stack.push((c, level + 1));
                    }
                }
            }
        }
        (None, stats)
    }

    /// Allocation-free range query: every object whose AABB intersects
    /// `q` is delivered to `sink`, traversal state lives in `scratch`
    /// (reused across queries), and the returned counters are plain
    /// `Copy` data. On a [frozen](RTree::freeze) tree the child-MBR tests
    /// scan the contiguous SoA lanes; on an unfrozen tree an iterative
    /// pointer walk with the same visit order is used. Node visits,
    /// entries tested, results and emission order are identical to
    /// [`range_query`](Self::range_query) either way.
    pub fn range_query_scratch<'a, S: FnMut(&'a T)>(
        &'a self,
        q: &Aabb,
        scratch: &mut TraversalScratch,
        mut sink: S,
    ) -> TraversalCounters {
        self.range_query_stream(q, scratch, |o| {
            sink(o);
            Flow::Emit
        })
    }

    /// Flow-controlled streaming range query — the traversal behind
    /// [`range_query_scratch`](Self::range_query_scratch), with the sink
    /// deciding per candidate whether it counts ([`Flow::Emit`]), is
    /// filtered out ([`Flow::Skip`]) or ends the traversal right here
    /// ([`Flow::Last`]). With an always-`Emit` sink the visits, tests,
    /// results and emission order are exactly those of
    /// [`range_query`](Self::range_query).
    pub fn range_query_stream<'a, S: FnMut(&'a T) -> Flow>(
        &'a self,
        q: &Aabb,
        scratch: &mut TraversalScratch,
        mut sink: S,
    ) -> TraversalCounters {
        let mut c = TraversalCounters::default();
        if self.is_empty() || !self.nodes[self.root].mbr.intersects(q) {
            return c;
        }
        scratch.stack.clear();
        match &self.soa {
            Some(soa) => {
                scratch.stack.push(soa.root());
                while let Some(n) = scratch.stack.pop() {
                    c.nodes_visited += 1;
                    let (s, e) = soa.entries(n);
                    if soa.is_leaf(n) {
                        let items = self.leaf_objects(soa.orig(n));
                        for i in s..e {
                            c.leaf_entries_tested += 1;
                            if soa.entry_intersects(i, q) {
                                match sink(&items[i - s]) {
                                    Flow::Emit => c.results += 1,
                                    Flow::Skip => {}
                                    Flow::Last => {
                                        c.results += 1;
                                        return c;
                                    }
                                }
                            }
                        }
                    } else {
                        for i in s..e {
                            if soa.entry_intersects(i, q) {
                                scratch.stack.push(soa.entry_ref(i));
                            }
                        }
                    }
                }
            }
            None => {
                scratch.stack.push(self.root as u32);
                while let Some(id) = scratch.stack.pop() {
                    c.nodes_visited += 1;
                    match &self.nodes[id as usize].kind {
                        NodeKind::Leaf(items) => {
                            for o in items {
                                c.leaf_entries_tested += 1;
                                if o.aabb().intersects(q) {
                                    match sink(o) {
                                        Flow::Emit => c.results += 1,
                                        Flow::Skip => {}
                                        Flow::Last => {
                                            c.results += 1;
                                            return c;
                                        }
                                    }
                                }
                            }
                        }
                        NodeKind::Inner(children) => {
                            for &ch in children {
                                if self.nodes[ch].mbr.intersects(q) {
                                    scratch.stack.push(ch as u32);
                                }
                            }
                        }
                    }
                }
            }
        }
        c
    }

    /// Allocation-free [`first_hit`](Self::first_hit): same best-first
    /// descent, with the candidate ordering buffer and stack borrowed
    /// from `scratch`.
    pub fn first_hit_scratch<'a>(
        &'a self,
        q: &Aabb,
        scratch: &mut TraversalScratch,
    ) -> (Option<&'a T>, TraversalCounters) {
        let mut c = TraversalCounters::default();
        if self.is_empty() || !self.nodes[self.root].mbr.intersects(q) {
            return (None, c);
        }
        let qc = q.center();
        scratch.stack.clear();
        match &self.soa {
            Some(soa) => {
                scratch.stack.push(soa.root());
                while let Some(n) = scratch.stack.pop() {
                    c.nodes_visited += 1;
                    let (s, e) = soa.entries(n);
                    if soa.is_leaf(n) {
                        let items = self.leaf_objects(soa.orig(n));
                        for i in s..e {
                            c.leaf_entries_tested += 1;
                            if soa.entry_intersects(i, q) {
                                c.results = 1;
                                return (Some(&items[i - s]), c);
                            }
                        }
                    } else {
                        // Push farthest-first so the closest child pops
                        // first — the same ordering (and the same centre
                        // arithmetic) as the pointer path.
                        scratch.cand.clear();
                        scratch.cand.extend(
                            (s..e).filter(|&i| soa.entry_intersects(i, q)).map(|i| i as u32),
                        );
                        scratch.cand.sort_by(|&a, &b| {
                            let da = soa.entry_center(a as usize).distance_sq(qc);
                            let db = soa.entry_center(b as usize).distance_sq(qc);
                            db.partial_cmp(&da).unwrap_or(Ordering::Equal)
                        });
                        for i in 0..scratch.cand.len() {
                            scratch.stack.push(soa.entry_ref(scratch.cand[i] as usize));
                        }
                    }
                }
            }
            None => {
                scratch.stack.push(self.root as u32);
                while let Some(id) = scratch.stack.pop() {
                    c.nodes_visited += 1;
                    match &self.nodes[id as usize].kind {
                        NodeKind::Leaf(items) => {
                            for o in items {
                                c.leaf_entries_tested += 1;
                                if o.aabb().intersects(q) {
                                    c.results = 1;
                                    return (Some(o), c);
                                }
                            }
                        }
                        NodeKind::Inner(children) => {
                            scratch.cand.clear();
                            scratch.cand.extend(
                                children
                                    .iter()
                                    .filter(|&&ch| self.nodes[ch].mbr.intersects(q))
                                    .map(|&ch| ch as u32),
                            );
                            scratch.cand.sort_by(|&a, &b| {
                                let da = self.nodes[a as usize].mbr.center().distance_sq(qc);
                                let db = self.nodes[b as usize].mbr.center().distance_sq(qc);
                                db.partial_cmp(&da).unwrap_or(Ordering::Equal)
                            });
                            for i in 0..scratch.cand.len() {
                                scratch.stack.push(scratch.cand[i]);
                            }
                        }
                    }
                }
            }
        }
        (None, c)
    }

    /// Best-first k-nearest-neighbour search from a point (distances are
    /// AABB distances — exact refinement is the caller's concern, as
    /// everywhere else in the filter/refine pipeline).
    // `!(d > kth)` is deliberate NaN handling, not a spelled-out `<=`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn knn(&self, p: Vec3, k: usize) -> (Vec<KnnResult<'_, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out: Vec<KnnResult<'_, T>> = Vec::with_capacity(k);
        if self.is_empty() || k == 0 {
            return (out, stats);
        }
        stats.presize(self.height);
        // Two heaps: node frontier (min-dist) and current best results.
        let mut frontier = BinaryHeap::new();
        frontier.push(HeapEntry {
            dist: self.nodes[self.root].mbr.min_distance_to_point(p),
            node: self.root,
        });

        // Track the current k-th best distance for pruning.
        let kth = |out: &Vec<KnnResult<'_, T>>| {
            if out.len() < k {
                f64::INFINITY
            } else {
                out.last().expect("non-empty").distance
            }
        };

        while let Some(HeapEntry { dist, node }) = frontier.pop() {
            if dist > kth(&out) {
                break; // no closer node can exist
            }
            let level = self.level_of(node);
            stats.bump(level);
            match &self.nodes[node].kind {
                NodeKind::Leaf(items) => {
                    for o in items {
                        stats.leaf_entries_tested += 1;
                        let d = o.aabb().min_distance_to_point(p);
                        if d < kth(&out) || out.len() < k {
                            let pos = out
                                .binary_search_by(|r| {
                                    r.distance.partial_cmp(&d).unwrap_or(Ordering::Equal)
                                })
                                .unwrap_or_else(|e| e);
                            out.insert(pos, KnnResult { object: o, distance: d });
                            out.truncate(k);
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        let d = self.nodes[c].mbr.min_distance_to_point(p);
                        // `!(d > kth)` rather than `d <= kth`: identical
                        // for finite distances, but a NaN distance (a
                        // query point derived from a degenerate AABB)
                        // counts as "unknown — explore", not "prune",
                        // so the search still terminates with k results.
                        if !(d > kth(&out)) {
                            frontier.push(HeapEntry { dist: d, node: c });
                        }
                    }
                }
            }
        }
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// Level of a node, root = 0 (O(height) walk up).
    fn level_of(&self, mut id: NodeId) -> usize {
        let mut l = 0;
        while let Some(p) = self.nodes[id].parent {
            id = p;
            l += 1;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;

    fn grid_tree(n: usize, cap: usize) -> (RTree<Aabb>, Vec<Aabb>) {
        let objs: Vec<Aabb> = (0..n)
            .map(|i| {
                let x = (i % 20) as f64 * 2.0;
                let y = ((i / 20) % 20) as f64 * 2.0;
                let z = (i / 400) as f64 * 2.0;
                Aabb::cube(Vec3::new(x, y, z), 0.5)
            })
            .collect();
        (RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(cap)), objs)
    }

    fn brute(objs: &[Aabb], q: &Aabb) -> usize {
        objs.iter().filter(|o| o.intersects(q)).count()
    }

    #[test]
    fn range_query_matches_brute_force() {
        let (t, objs) = grid_tree(2000, 16);
        let queries = [
            Aabb::new(Vec3::ZERO, Vec3::splat(5.0)),
            Aabb::new(Vec3::splat(10.0), Vec3::splat(25.0)),
            Aabb::cube(Vec3::new(19.0, 19.0, 4.0), 3.0),
            Aabb::cube(Vec3::new(-100.0, 0.0, 0.0), 1.0), // empty
            Aabb::new(Vec3::splat(-100.0), Vec3::splat(100.0)), // everything
        ];
        for q in &queries {
            let (hits, stats) = t.range_query(q);
            assert_eq!(hits.len(), brute(&objs, q), "query {q}");
            assert_eq!(stats.results as usize, hits.len());
        }
    }

    #[test]
    fn stats_level_zero_is_root() {
        let (t, _) = grid_tree(2000, 16);
        let (_, stats) = t.range_query(&Aabb::cube(Vec3::new(20.0, 20.0, 2.0), 4.0));
        assert_eq!(stats.nodes_per_level[0], 1, "exactly one root access");
        assert_eq!(stats.nodes_per_level.len(), t.height());
    }

    #[test]
    fn visitor_sees_every_counted_node() {
        let (t, _) = grid_tree(1000, 8);
        let q = Aabb::cube(Vec3::new(10.0, 10.0, 1.0), 6.0);
        let mut visited = Vec::new();
        let (_, stats) = t.range_query_with(&q, |id, level| visited.push((id, level)));
        assert_eq!(visited.len() as u64, stats.nodes_visited());
        // No duplicate node visits in a single query.
        let mut ids: Vec<_> = visited.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), visited.len());
    }

    #[test]
    fn first_hit_finds_something_iff_results_exist() {
        let (t, objs) = grid_tree(2000, 16);
        let q_hit = Aabb::cube(Vec3::new(6.0, 6.0, 2.0), 2.0);
        let (hit, stats) = t.first_hit(&q_hit);
        let o = hit.expect("region is populated");
        assert!(o.intersects(&q_hit));
        assert!(stats.nodes_visited() >= 1);

        let q_miss = Aabb::cube(Vec3::new(500.0, 0.0, 0.0), 1.0);
        assert!(t.first_hit(&q_miss).0.is_none());
        assert_eq!(brute(&objs, &q_miss), 0);
    }

    #[test]
    fn first_hit_is_cheaper_than_full_query() {
        let (t, _) = grid_tree(4000, 16);
        let q = Aabb::new(Vec3::ZERO, Vec3::splat(30.0)); // large, many results
        let (_, full) = t.range_query(&q);
        let (_, seed) = t.first_hit(&q);
        assert!(
            seed.nodes_visited() < full.nodes_visited() / 4,
            "seed {} vs full {}",
            seed.nodes_visited(),
            full.nodes_visited()
        );
    }

    #[test]
    fn knn_matches_brute_force() {
        let (t, objs) = grid_tree(1500, 16);
        for (p, k) in [
            (Vec3::new(7.3, 11.9, 2.2), 1usize),
            (Vec3::new(0.0, 0.0, 0.0), 5),
            (Vec3::new(40.0, 40.0, 10.0), 12),
            (Vec3::new(-5.0, 18.0, 1.0), 3),
        ] {
            let (got, _) = t.knn(p, k);
            let mut want: Vec<f64> = objs.iter().map(|o| o.min_distance_to_point(p)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.distance - w).abs() < 1e-9, "knn distance mismatch at {p} k={k}");
            }
            // Results sorted ascending.
            for w in got.windows(2) {
                assert!(w[0].distance <= w[1].distance);
            }
        }
    }

    #[test]
    fn knn_edge_cases() {
        let (t, objs) = grid_tree(100, 8);
        let (all, _) = t.knn(Vec3::ZERO, 1000); // k > n
        assert_eq!(all.len(), objs.len());
        let (none, _) = t.knn(Vec3::ZERO, 0);
        assert!(none.is_empty());
        let empty: RTree<Aabb> = RTree::new(RTreeParams::default());
        assert!(empty.knn(Vec3::ZERO, 3).0.is_empty());
        assert!(empty.range_query(&Aabb::cube(Vec3::ZERO, 1.0)).0.is_empty());
        assert!(empty.first_hit(&Aabb::cube(Vec3::ZERO, 1.0)).0.is_none());
    }

    #[test]
    fn knn_survives_nan_distances() {
        // Regression for the `HeapEntry` ordering: with
        // `partial_cmp(..).unwrap_or(Equal)` a NaN frontier distance
        // compared Equal to everything and silently corrupted the heap's
        // best-first order. A NaN query point makes *every* distance NaN
        // (the degenerate/NaN-prone extreme); a partially-NaN point mixes
        // NaN and finite distances in one frontier. Both must terminate
        // and return exactly k results without panicking, and with
        // `total_cmp` the finite distances must still come out ascending.
        let (t, objs) = grid_tree(400, 8);
        for p in [
            Vec3::new(f64::NAN, f64::NAN, f64::NAN),
            Vec3::new(f64::NAN, 5.0, 1.0),
            Vec3::new(7.0, f64::NAN, 0.0),
        ] {
            let (got, stats) = t.knn(p, 6);
            assert_eq!(got.len(), 6, "query point {p}");
            assert_eq!(stats.results, 6);
            let finite: Vec<f64> =
                got.iter().map(|r| r.distance).filter(|d| d.is_finite()).collect();
            for w in finite.windows(2) {
                assert!(w[0] <= w[1], "finite distances must stay sorted at {p}");
            }
        }
        // The realistic source of such a point: the centre of a
        // degenerate (EMPTY) AABB is ∞ + -∞ = NaN on every axis.
        let p = Aabb::EMPTY.center();
        assert!(p.x.is_nan());
        let (got, _) = t.knn(p, 3);
        assert_eq!(got.len(), 3, "NaN-prone degenerate-AABB query point");
        let _ = objs;
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let (mut t, objs) = grid_tree(2500, 16);
        t.freeze();
        let queries = [
            Aabb::new(Vec3::ZERO, Vec3::splat(6.0)),
            Aabb::cube(Vec3::new(18.0, 18.0, 3.0), 4.0),
            Aabb::cube(Vec3::new(-100.0, 0.0, 0.0), 1.0), // empty
            Aabb::new(Vec3::splat(-100.0), Vec3::splat(100.0)), // everything
        ];
        let mut scratch = TraversalScratch::default();
        // Frozen (SoA lanes) and unfrozen (pointer fallback) give the
        // same answers, in the same emission order, with the same counts.
        for frozen in [true, false] {
            if !frozen {
                t.soa = None;
            }
            for q in &queries {
                let (want, stats) = t.range_query(q);
                let mut got: Vec<&Aabb> = Vec::new();
                let c = t.range_query_scratch(q, &mut scratch, |o| got.push(o));
                assert_eq!(got.len(), want.len(), "frozen={frozen} at {q}");
                assert!(got.iter().zip(&want).all(|(a, b)| std::ptr::eq(*a, *b)), "order");
                assert_eq!(c.nodes_visited, stats.nodes_visited(), "frozen={frozen} at {q}");
                assert_eq!(c.leaf_entries_tested, stats.leaf_entries_tested);
                assert_eq!(c.results, stats.results);

                let (want_hit, hit_stats) = t.first_hit(q);
                let (got_hit, hc) = t.first_hit_scratch(q, &mut scratch);
                assert_eq!(got_hit.is_some(), want_hit.is_some(), "frozen={frozen}");
                if let (Some(a), Some(b)) = (got_hit, want_hit) {
                    assert!(std::ptr::eq(a, b), "same first hit");
                }
                assert_eq!(hc.nodes_visited, hit_stats.nodes_visited());
                assert_eq!(hc.leaf_entries_tested, hit_stats.leaf_entries_tested);
            }
        }
        assert_eq!(objs.len(), t.len());
    }

    #[test]
    fn dynamic_tree_visits_more_nodes_than_str_on_dense_data() {
        // The core of experiment E1, in miniature.
        let objs: Vec<Aabb> = (0..3000)
            .map(|i| {
                // Dense: heavily overlapping boxes in a small volume.
                let f = i as f64 * 0.01;
                Aabb::cube(Vec3::new(f.sin() * 10.0, f.cos() * 10.0, (i % 100) as f64 * 0.2), 1.5)
            })
            .collect();
        let mut dynamic = RTree::new(RTreeParams::with_max_entries(16));
        for o in objs.clone() {
            dynamic.insert(o);
        }
        let packed = RTree::bulk_load(objs, RTreeParams::with_max_entries(16));
        let q = Aabb::cube(Vec3::new(0.0, 10.0, 10.0), 2.5);
        let (h1, s1) = dynamic.range_query(&q);
        let (h2, s2) = packed.range_query(&q);
        assert_eq!(h1.len(), h2.len());
        assert!(
            s2.nodes_visited() <= s1.nodes_visited(),
            "packed {} should visit no more nodes than dynamic {}",
            s2.nodes_visited(),
            s1.nodes_visited()
        );
    }
}
