//! Sort-Tile-Recursive bulk loading (Leutenegger, Lopez & Edgington,
//! ICDE'97) — referenced directly by the paper as the packing used for
//! FLAT's seed index ("an R-Tree (STR bulk-loaded)", §2.1).
//!
//! STR sorts objects by the x-coordinate of their centre, cuts the
//! sequence into vertical slabs, sorts each slab by y, cuts again, sorts
//! runs by z and packs consecutive objects into full leaves. Upper levels
//! are built by applying the same procedure to the node centres.

use crate::node::{Node, NodeKind, RTreeObject};
use crate::{NodeId, RTree, RTreeParams};
use neurospatial_geom::{Aabb, Vec3};

/// Build a tree by STR packing. Objects end up in leaves in tile order;
/// leaf nodes are allocated contiguously in the arena, which gives
/// sequential page ids to spatially adjacent leaves (the layout the disk
/// simulator rewards, as a real bulk loader would).
pub fn bulk_load<T: RTreeObject>(objects: Vec<T>, params: RTreeParams) -> RTree<T> {
    if objects.is_empty() {
        return RTree::new(params);
    }
    let cap = params.max_entries;

    // --- Pack leaves ----------------------------------------------------
    let items: Vec<(Vec3, T)> = objects.into_iter().map(|o| (o.aabb().center(), o)).collect();
    let mut nodes: Vec<Node<T>> = Vec::new();
    let mut level_ids: Vec<NodeId> = Vec::new();
    {
        let mut runs: Vec<Vec<(Vec3, T)>> = Vec::new();
        str_tile(items, cap, 0, &mut runs);
        for run in runs {
            let mut mbr = Aabb::EMPTY;
            let mut leaf_items = Vec::with_capacity(run.len());
            for (_, o) in run {
                mbr = mbr.union(&o.aabb());
                leaf_items.push(o);
            }
            let id = nodes.len();
            nodes.push(Node { mbr, parent: None, kind: NodeKind::Leaf(leaf_items) });
            level_ids.push(id);
        }
    }

    // --- Pack upper levels ----------------------------------------------
    let mut height = 1usize;
    while level_ids.len() > 1 {
        height += 1;
        let entries: Vec<(Vec3, NodeId)> =
            level_ids.iter().map(|&id| (nodes[id].mbr.center(), id)).collect();
        let mut runs: Vec<Vec<(Vec3, NodeId)>> = Vec::new();
        str_tile(entries, cap, 0, &mut runs);
        let mut next_level = Vec::with_capacity(runs.len());
        for run in runs {
            let id = nodes.len();
            let mut mbr = Aabb::EMPTY;
            let mut children = Vec::with_capacity(run.len());
            for (_, c) in run {
                mbr = mbr.union(&nodes[c].mbr);
                nodes.push_parent(c, id);
                children.push(c);
            }
            nodes.push(Node { mbr, parent: None, kind: NodeKind::Inner(children) });
            next_level.push(id);
        }
        level_ids = next_level;
    }

    let root = level_ids[0];
    let len = nodes
        .iter()
        .map(|n| match &n.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Inner(_) => 0,
        })
        .sum();
    RTree { nodes, root, params, len, height, free: Vec::new(), soa: None }
}

/// Recursively tile `items` (center, payload) into runs of at most `cap`
/// elements, cutting along `axis`, then `axis+1`, then `axis+2`.
fn str_tile<P>(mut items: Vec<(Vec3, P)>, cap: usize, axis: usize, out: &mut Vec<Vec<(Vec3, P)>>) {
    let n = items.len();
    if n == 0 {
        return;
    }
    if n <= cap {
        out.push(items);
        return;
    }
    // Number of leaves below this subdivision and slab count on this axis:
    // S = ceil(P^(1/k)) with k = remaining axes.
    let pages = n.div_ceil(cap);
    let remaining_axes = 3 - axis;
    let slabs = if remaining_axes == 1 {
        pages
    } else {
        (pages as f64).powf(1.0 / remaining_axes as f64).ceil() as usize
    }
    .max(1);
    // On the last axis the runs are the leaves themselves. Chunk sizes are
    // balanced (they differ by at most one) so that no tail leaf
    // underflows the minimum fill: for n > cap the smallest chunk holds at
    // least ⌊n/k⌋ ≥ cap/2 ≥ min_entries objects.
    let k = if axis + 1 < 3 { slabs.min(n) } else { n.div_ceil(cap) };
    let base = n / k;
    let extra = n % k;

    items.sort_by(|a, b| a.0.axis(axis).partial_cmp(&b.0.axis(axis)).expect("finite coordinates"));

    let mut iter = items.into_iter();
    for c in 0..k {
        let size = base + usize::from(c < extra);
        let run: Vec<(Vec3, P)> = iter.by_ref().take(size).collect();
        debug_assert_eq!(run.len(), size);
        if axis + 1 < 3 {
            str_tile(run, cap, axis + 1, out);
        } else {
            out.push(run);
        }
    }
}

/// Tiny extension trait to keep parent wiring readable above.
trait PushParent<T> {
    fn push_parent(&mut self, child: NodeId, parent: NodeId);
}

impl<T: RTreeObject> PushParent<T> for Vec<Node<T>> {
    fn push_parent(&mut self, child: NodeId, parent: NodeId) {
        self[child].parent = Some(parent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::validate;
    use neurospatial_geom::Vec3;

    fn cubes(n: usize) -> Vec<Aabb> {
        // A jittered grid of small cubes.
        (0..n)
            .map(|i| {
                let x = (i % 17) as f64 * 3.0;
                let y = ((i / 17) % 13) as f64 * 3.1;
                let z = (i / 221) as f64 * 2.7;
                Aabb::cube(Vec3::new(x, y, z), 0.4 + (i % 5) as f64 * 0.1)
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t: RTree<Aabb> = RTree::bulk_load(vec![], RTreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);

        let one = RTree::bulk_load(vec![Aabb::cube(Vec3::ZERO, 1.0)], RTreeParams::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one.height(), 1);
        validate(&one).unwrap();
    }

    #[test]
    fn packs_all_objects_once() {
        for n in [1usize, 7, 64, 65, 500, 3000] {
            let t = RTree::bulk_load(cubes(n), RTreeParams::with_max_entries(16));
            assert_eq!(t.len(), n, "n={n}");
            validate(&t).unwrap();
        }
    }

    #[test]
    fn produces_expected_height() {
        // Height is logarithmic in n: the packed tree must stay within one
        // level of the information-theoretic optimum ceil(log_M(n/M)) + 1.
        for (n, cap) in [(256usize, 16usize), (5000, 16), (5000, 64), (100_000, 64)] {
            let t = RTree::bulk_load(cubes(n), RTreeParams::with_max_entries(cap));
            let optimal = {
                let mut h = 1usize;
                let mut capacity = cap;
                while capacity < n {
                    capacity *= cap;
                    h += 1;
                }
                h
            };
            assert!(
                t.height() >= optimal && t.height() <= optimal + 1,
                "n={n} cap={cap}: height {} vs optimal {optimal}",
                t.height()
            );
            validate(&t).unwrap();
        }
    }

    #[test]
    fn leaves_are_spatially_coherent() {
        // STR leaves should have far smaller total volume than random
        // groupings of the same capacity.
        let objs = cubes(2000);
        let t = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(32));
        let str_vol: f64 = t
            .nodes
            .iter()
            .filter(|n| n.is_leaf() && n.entry_count() > 0)
            .map(|n| n.mbr.volume())
            .sum();
        // Random grouping: consecutive objects in original (row-major
        // jittered grid) order is actually fairly coherent too, so shuffle.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut shuffled = objs;
        shuffled.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(1));
        let rand_vol: f64 = shuffled
            .chunks(32)
            .map(|c| c.iter().fold(Aabb::EMPTY, |a, b| a.union(b)).volume())
            .sum();
        assert!(
            str_vol < rand_vol * 0.5,
            "STR should be much tighter: str={str_vol}, random={rand_vol}"
        );
    }

    #[test]
    fn bulk_load_handles_duplicate_positions() {
        let objs: Vec<Aabb> = (0..100).map(|_| Aabb::cube(Vec3::splat(1.0), 0.5)).collect();
        let t = RTree::bulk_load(objs, RTreeParams::with_max_entries(8));
        assert_eq!(t.len(), 100);
        validate(&t).unwrap();
    }
}
