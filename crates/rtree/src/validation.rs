//! Structural invariant checking, used pervasively by the test-suite.

use crate::node::{NodeKind, RTreeObject};
use crate::{NodeId, RTree};
use neurospatial_geom::Aabb;

/// Verify every structural invariant of the tree:
///
/// 1. node MBRs tightly bound their contents;
/// 2. parent links match child lists;
/// 3. all leaves sit at the same depth (balance);
/// 4. entry counts respect `min_entries ..= max_entries` (root exempt
///    from the minimum);
/// 5. the stored `len` and `height` agree with a full walk.
pub fn validate<T: RTreeObject>(tree: &RTree<T>) -> Result<(), String> {
    let mut object_count = 0usize;
    let mut leaf_depths = Vec::new();
    check_node(tree, tree.root, None, 0, &mut object_count, &mut leaf_depths)?;

    if object_count != tree.len() {
        return Err(format!("len() = {} but walk found {object_count}", tree.len()));
    }
    leaf_depths.dedup();
    if leaf_depths.len() > 1 {
        return Err(format!("unbalanced: leaf depths {leaf_depths:?}"));
    }
    if let Some(&d) = leaf_depths.first() {
        if d + 1 != tree.height() {
            return Err(format!("height() = {} but leaves at depth {d}", tree.height()));
        }
    }
    Ok(())
}

fn check_node<T: RTreeObject>(
    tree: &RTree<T>,
    id: NodeId,
    parent: Option<NodeId>,
    depth: usize,
    object_count: &mut usize,
    leaf_depths: &mut Vec<usize>,
) -> Result<(), String> {
    let n = &tree.nodes[id];
    if n.parent != parent {
        return Err(format!("node {id}: parent link {:?} != expected {parent:?}", n.parent));
    }
    let count = n.entry_count();
    let is_root = id == tree.root;
    if !is_root && count < tree.params().min_entries {
        return Err(format!("node {id}: underflow ({count} entries)"));
    }
    if count > tree.params().max_entries {
        return Err(format!("node {id}: overflow ({count} entries)"));
    }

    match &n.kind {
        NodeKind::Leaf(items) => {
            let want: Aabb = items.iter().fold(Aabb::EMPTY, |a, o| a.union(&o.aabb()));
            if !boxes_equal(&want, &n.mbr) {
                return Err(format!("leaf {id}: stored MBR {} != tight {}", n.mbr, want));
            }
            *object_count += items.len();
            leaf_depths.push(depth);
        }
        NodeKind::Inner(children) => {
            if children.is_empty() && !is_root {
                return Err(format!("inner node {id} has no children"));
            }
            let want: Aabb = children.iter().fold(Aabb::EMPTY, |a, &c| a.union(&tree.nodes[c].mbr));
            if !boxes_equal(&want, &n.mbr) {
                return Err(format!("inner {id}: stored MBR {} != tight {}", n.mbr, want));
            }
            for &c in children {
                check_node(tree, c, Some(id), depth + 1, object_count, leaf_depths)?;
            }
        }
    }
    Ok(())
}

fn boxes_equal(a: &Aabb, b: &Aabb) -> bool {
    if a.is_empty() && b.is_empty() {
        return true;
    }
    (a.lo - b.lo).max_abs_component() < 1e-9 && (a.hi - b.hi).max_abs_component() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;
    use neurospatial_geom::Vec3;

    #[test]
    fn valid_trees_pass() {
        let objs: Vec<Aabb> =
            (0..500).map(|i| Aabb::cube(Vec3::new(i as f64, 0.0, 0.0), 0.4)).collect();
        let t = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(8));
        validate(&t).unwrap();
        let mut d = RTree::new(RTreeParams::with_max_entries(8));
        for o in objs {
            d.insert(o);
        }
        validate(&d).unwrap();
    }

    #[test]
    fn corrupted_mbr_detected() {
        let objs: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(i as f64, 0.0, 0.0), 0.4)).collect();
        let mut t = RTree::bulk_load(objs, RTreeParams::with_max_entries(8));
        let root = t.root;
        t.nodes[root].mbr = t.nodes[root].mbr.inflate(5.0);
        assert!(validate(&t).is_err());
    }

    #[test]
    fn corrupted_len_detected() {
        let objs: Vec<Aabb> =
            (0..100).map(|i| Aabb::cube(Vec3::new(i as f64, 0.0, 0.0), 0.4)).collect();
        let mut t = RTree::bulk_load(objs, RTreeParams::with_max_entries(8));
        t.len = 99;
        assert!(validate(&t).unwrap_err().contains("len()"));
    }
}
