//! Deletion with condense-tree reinsertion (Guttman).

use crate::node::{NodeKind, RTreeObject};
use crate::{NodeId, RTree};
use neurospatial_geom::Aabb;

impl<T: RTreeObject + PartialEq> RTree<T> {
    /// Remove one object equal to `obj` (first match in leaf order under
    /// its AABB). Returns `true` if an object was removed.
    pub fn remove(&mut self, obj: &T) -> bool {
        self.soa = None;
        let bb = obj.aabb();
        let Some(leaf) = self.find_leaf(self.root, &bb, obj) else {
            return false;
        };
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf(items) => {
                let pos = items.iter().position(|o| o == obj).expect("find_leaf found it");
                items.remove(pos);
            }
            NodeKind::Inner(_) => unreachable!("find_leaf returns leaves"),
        }
        self.len -= 1;
        self.recompute_mbr(leaf);
        self.condense(leaf);
        true
    }

    /// Depth-first search for the leaf containing `obj`.
    fn find_leaf(&self, id: NodeId, bb: &Aabb, obj: &T) -> Option<NodeId> {
        if !self.nodes[id].mbr.intersects(bb) {
            return None;
        }
        match &self.nodes[id].kind {
            NodeKind::Leaf(items) => items.iter().any(|o| o == obj).then_some(id),
            NodeKind::Inner(children) => children.iter().find_map(|&c| self.find_leaf(c, bb, obj)),
        }
    }

    /// CondenseTree: remove underflowing nodes bottom-up, collecting their
    /// orphans, then reinsert the orphans.
    fn condense(&mut self, mut node: NodeId) {
        let min = self.params.min_entries;
        let mut orphan_objects: Vec<T> = Vec::new();
        let mut orphan_subtrees: Vec<NodeId> = Vec::new();

        while let Some(parent) = self.nodes[node].parent {
            if self.nodes[node].entry_count() < min {
                // Unlink from parent and stash contents for reinsertion.
                match &mut self.nodes[parent].kind {
                    NodeKind::Inner(ch) => {
                        let pos = ch.iter().position(|&c| c == node).expect("child link");
                        ch.swap_remove(pos);
                    }
                    NodeKind::Leaf(_) => unreachable!("parent is inner"),
                }
                match std::mem::replace(&mut self.nodes[node].kind, NodeKind::Leaf(Vec::new())) {
                    NodeKind::Leaf(items) => orphan_objects.extend(items),
                    NodeKind::Inner(children) => orphan_subtrees.extend(children),
                }
                self.free.push(node);
            }
            self.recompute_mbr(parent);
            node = parent;
        }

        // Shrink the root if it is an inner node with a single child.
        while let NodeKind::Inner(children) = &self.nodes[self.root].kind {
            if children.len() == 1 {
                let only = children[0];
                self.free.push(self.root);
                self.root = only;
                self.nodes[only].parent = None;
                self.height -= 1;
            } else {
                break;
            }
        }
        // Empty tree back to a single empty leaf root.
        if self.len == 0 && orphan_objects.is_empty() && orphan_subtrees.is_empty() {
            if let NodeKind::Inner(_) = &self.nodes[self.root].kind {
                self.nodes[self.root].kind = NodeKind::Leaf(Vec::new());
                self.nodes[self.root].mbr = Aabb::EMPTY;
                self.height = 1;
            }
        }

        // Reinsert orphaned subtrees' objects and loose objects. The
        // classic algorithm reinserts subtrees at matching height; for
        // simplicity and identical semantics we reinsert at object level
        // (their object count is bounded by min_entries × height).
        let mut stack = orphan_subtrees;
        while let Some(id) = stack.pop() {
            match std::mem::replace(&mut self.nodes[id].kind, NodeKind::Leaf(Vec::new())) {
                NodeKind::Leaf(items) => orphan_objects.extend(items),
                NodeKind::Inner(children) => stack.extend(children),
            }
            self.free.push(id);
        }
        let reinsert_count = orphan_objects.len();
        self.len -= reinsert_count; // insert() will re-add them
        for o in orphan_objects {
            self.insert(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::validate;
    use crate::RTreeParams;
    use neurospatial_geom::Vec3;

    fn boxes(n: usize) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 12) as f64 * 2.0;
                let y = ((i / 12) % 12) as f64 * 2.0;
                let z = (i / 144) as f64 * 2.0;
                Aabb::cube(Vec3::new(x, y, z), 0.7)
            })
            .collect()
    }

    #[test]
    fn remove_existing_object() {
        let objs = boxes(200);
        let mut t = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(8));
        assert!(t.remove(&objs[17]));
        assert_eq!(t.len(), 199);
        validate(&t).unwrap();
        // It is gone from query results.
        let (hits, _) = t.range_query(&objs[17]);
        assert!(!hits.iter().any(|h| **h == objs[17]));
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = RTree::bulk_load(boxes(50), RTreeParams::with_max_entries(8));
        let ghost = Aabb::cube(Vec3::splat(999.0), 1.0);
        assert!(!t.remove(&ghost));
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn remove_everything() {
        let objs = boxes(150);
        let mut t = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(8));
        for (i, o) in objs.iter().enumerate() {
            assert!(t.remove(o), "removing object {i}");
            validate(&t).unwrap_or_else(|e| panic!("invalid after removing {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        // Tree is reusable after emptying.
        t.insert(objs[0]);
        assert_eq!(t.len(), 1);
        validate(&t).unwrap();
    }

    #[test]
    fn interleaved_insert_remove() {
        let objs = boxes(300);
        let mut t = RTree::new(RTreeParams::with_max_entries(8));
        for o in &objs[..200] {
            t.insert(*o);
        }
        for o in &objs[..100] {
            assert!(t.remove(o));
        }
        for o in &objs[200..] {
            t.insert(*o);
        }
        assert_eq!(t.len(), 200);
        validate(&t).unwrap();
        // Survivors are exactly objs[100..300].
        let q = Aabb::new(Vec3::splat(-100.0), Vec3::splat(100.0));
        let (hits, _) = t.range_query(&q);
        assert_eq!(hits.len(), 200);
    }

    #[test]
    fn duplicate_objects_removed_one_at_a_time() {
        let b = Aabb::cube(Vec3::ONE, 1.0);
        let mut t = RTree::new(RTreeParams::with_max_entries(4));
        for _ in 0..5 {
            t.insert(b);
        }
        assert_eq!(t.len(), 5);
        for left in (0..5).rev() {
            assert!(t.remove(&b));
            assert_eq!(t.len(), left);
        }
        assert!(!t.remove(&b));
    }
}
