//! # neurospatial-rtree
//!
//! An R-Tree implementation with the features the paper's experiments
//! need:
//!
//! * **STR bulk loading** (Leutenegger et al., ICDE'97) — the packing the
//!   demo's baseline R-Tree and FLAT's seed index both use;
//! * **dynamic insertion** with linear, quadratic and R*-style splits, so
//!   experiments can compare a bulk-loaded against an incrementally built
//!   tree (the "R-Trees and variants" of §2);
//! * **deletion** with the classic condense-tree reinsertion;
//! * **instrumented queries**: every traversal can report node accesses
//!   *per level* — exactly the statistic the demo visualizes to show how
//!   overlap degrades the R-Tree on dense data (§2.2) — and an optional
//!   visitor receives every visited node id so the storage simulator can
//!   charge page reads;
//! * **first-hit descent** — FLAT's seed phase (find *one* object in the
//!   query range without paying for full overlap-expansion);
//! * **best-first k-nearest-neighbour** search.
//!
//! The tree is an arena of nodes indexed by [`NodeId`]; objects live in
//! the leaves by value.
//!
//! ```
//! use neurospatial_rtree::{RTree, RTreeParams};
//! use neurospatial_geom::{Aabb, Vec3};
//!
//! // Index 1000 unit cubes on a line.
//! let objs: Vec<Aabb> = (0..1000)
//!     .map(|i| Aabb::cube(Vec3::new(i as f64 * 2.0, 0.0, 0.0), 0.5))
//!     .collect();
//! let tree = RTree::bulk_load(objs, RTreeParams::default());
//! let q = Aabb::new(Vec3::new(10.0, -1.0, -1.0), Vec3::new(20.0, 1.0, 1.0));
//! let (hits, stats) = tree.range_query(&q);
//! assert_eq!(hits.len(), 6);
//! assert!(stats.nodes_visited() > 0);
//! ```

pub mod insert;
pub mod node;
pub mod params;
pub mod query;
pub mod remove;
pub mod rplus;
pub mod soa;
pub mod str_pack;
pub mod validation;

pub use node::{NodeId, RTreeObject};
pub use params::{RTreeParams, SplitStrategy};
pub use query::{KnnResult, QueryStats};
pub use rplus::RPlusTree;
pub use soa::{EpochMarks, FrozenView, TraversalCounters, TraversalScratch};

use neurospatial_geom::Aabb;
use node::Node;
use soa::SoaArena;

/// An arena-allocated R-Tree over objects of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T: RTreeObject> {
    pub(crate) nodes: Vec<Node<T>>,
    pub(crate) root: NodeId,
    pub(crate) params: RTreeParams,
    pub(crate) len: usize,
    /// Height of the tree: 1 for a single leaf root.
    pub(crate) height: usize,
    /// Free list of recycled arena slots (from deletions).
    pub(crate) free: Vec<NodeId>,
    /// Frozen structure-of-arrays traversal layout (see [`soa`]). Built
    /// by [`bulk_load`](Self::bulk_load) / [`freeze`](Self::freeze),
    /// dropped by any mutation.
    pub(crate) soa: Option<SoaArena>,
}

impl<T: RTreeObject> RTree<T> {
    /// An empty tree.
    pub fn new(params: RTreeParams) -> Self {
        params.validate();
        let root_node = Node::new_leaf();
        RTree {
            nodes: vec![root_node],
            root: 0,
            params,
            len: 0,
            height: 1,
            free: Vec::new(),
            soa: None,
        }
    }

    /// Bulk load with Sort-Tile-Recursive packing. The fastest way to
    /// build, and produces minimal-overlap trees for static data. Call
    /// [`freeze`](Self::freeze) afterwards if the tree will serve scratch
    /// queries — freezing is not automatic, so builds that only walk the
    /// tree directly (e.g. the TOUCH join's partitioning tree) pay
    /// neither the SoA construction time nor its memory.
    pub fn bulk_load(objects: Vec<T>, params: RTreeParams) -> Self {
        params.validate();
        str_pack::bulk_load(objects, params)
    }

    /// (Re)build the structure-of-arrays traversal layout. Idempotent;
    /// O(n). Call after a batch of `insert`/`remove` calls to restore
    /// cache-friendly scratch queries (they fall back to a pointer walk
    /// on unfrozen trees).
    pub fn freeze(&mut self) {
        if self.soa.is_none() && !self.is_empty() {
            self.soa = Some(SoaArena::build(self));
        }
    }

    /// Whether the SoA traversal layout is current.
    pub fn is_frozen(&self) -> bool {
        self.soa.is_some()
    }

    /// Read-only view of the frozen structure-of-arrays layout, or `None`
    /// if the tree is not frozen. External traversals (e.g. the TOUCH
    /// join) descend through this instead of the pointer arena.
    pub fn frozen(&self) -> Option<FrozenView<'_>> {
        self.soa.as_ref().map(|arena| FrozenView { arena })
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of live arena nodes (≈ pages the index occupies).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Root bounding box (`Aabb::EMPTY` for an empty tree).
    pub fn root_mbr(&self) -> Aabb {
        self.nodes[self.root].mbr
    }

    /// Tree parameters.
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Rough memory footprint in bytes (arena + leaf payloads), used by
    /// the join experiments' memory comparisons.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node<T>>();
        total += self.soa.as_ref().map_or(0, |s| s.memory_bytes());
        for n in &self.nodes {
            match &n.kind {
                node::NodeKind::Leaf(items) => {
                    total += items.capacity() * std::mem::size_of::<T>();
                }
                node::NodeKind::Inner(children) => {
                    total += children.capacity() * std::mem::size_of::<NodeId>();
                }
            }
        }
        total
    }

    /// Arena id of the root node.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// MBR of an arbitrary node (for external traversals, e.g. spatial
    /// joins that walk the tree themselves).
    pub fn node_mbr(&self, id: NodeId) -> Aabb {
        self.nodes[id].mbr
    }

    /// Children of a node, or `None` if it is a leaf.
    pub fn node_children(&self, id: NodeId) -> Option<&[NodeId]> {
        match &self.nodes[id].kind {
            node::NodeKind::Inner(ch) => Some(ch),
            node::NodeKind::Leaf(_) => None,
        }
    }

    /// Objects of a leaf node (empty slice for inner nodes).
    pub fn leaf_objects(&self, id: NodeId) -> &[T] {
        match &self.nodes[id].kind {
            node::NodeKind::Leaf(items) => items,
            node::NodeKind::Inner(_) => &[],
        }
    }

    /// Sum of leaf MBR volumes — the "dead space" metric: tighter
    /// packings (STR) have less of it than incrementally grown trees.
    pub fn total_leaf_volume(&self) -> f64 {
        self.live_leaves().map(|n| n.mbr.volume()).sum()
    }

    /// Sum of pairwise overlap volume between leaf MBRs — the quantity
    /// the paper blames for R-Tree degradation on dense data (§2).
    /// O(L²) in the number of leaves; intended for analysis, not hot paths.
    pub fn total_leaf_overlap(&self) -> f64 {
        let leaves: Vec<Aabb> = self.live_leaves().map(|n| n.mbr).collect();
        let mut s = 0.0;
        for i in 0..leaves.len() {
            for j in i + 1..leaves.len() {
                s += leaves[i].overlap_volume(&leaves[j]);
            }
        }
        s
    }

    fn live_leaves(&self) -> impl Iterator<Item = &Node<T>> {
        self.nodes.iter().enumerate().filter_map(move |(i, n)| {
            (n.is_leaf() && self.is_live(i) && !self.free.contains(&i)).then_some(n)
        })
    }

    /// Iterate over all objects (leaf order).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(i, n)| {
                !self.free.contains(i)
                    && matches!(n.kind, node::NodeKind::Leaf(_))
                    && self.is_live(*i)
            })
            .flat_map(|(_, n)| match &n.kind {
                node::NodeKind::Leaf(items) => items.iter(),
                node::NodeKind::Inner(_) => unreachable!("filtered to leaves"),
            })
    }

    /// A node is live if it is reachable from the root. Used only by the
    /// debug iterator above and validation; O(height) per call.
    fn is_live(&self, mut id: NodeId) -> bool {
        loop {
            if id == self.root {
                return true;
            }
            match self.nodes[id].parent {
                Some(p) => id = p,
                None => return false,
            }
        }
    }
}
