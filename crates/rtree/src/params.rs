//! Tree configuration.

/// Node-split strategy used on overflow during dynamic insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Guttman's linear split: O(M), lowest build cost, worst quality.
    Linear,
    /// Guttman's quadratic split: O(M²), the classic default.
    #[default]
    Quadratic,
    /// R*-style topological split: choose the axis minimising total
    /// margin, then the distribution minimising overlap (ties: volume).
    RStar,
}

/// R-Tree shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeParams {
    /// Maximum entries per node (fan-out M).
    pub max_entries: usize,
    /// Minimum entries per node (m ≤ M/2); underflowing nodes are
    /// condensed on deletion.
    pub min_entries: usize,
    /// Split strategy for dynamic inserts.
    pub split: SplitStrategy,
}

impl Default for RTreeParams {
    /// M = 64: an 8 KiB page holds ~64 child entries of
    /// (AABB = 48 B + id = 8 B) plus header, or ~100 object capsules —
    /// we use one fan-out for both to keep the page model simple.
    fn default() -> Self {
        RTreeParams { max_entries: 64, min_entries: 26, split: SplitStrategy::Quadratic }
    }
}

impl RTreeParams {
    /// Params with fan-out `m` and min-fill 40 % (the R* recommendation).
    pub fn with_max_entries(m: usize) -> Self {
        assert!(m >= 4, "fan-out must be at least 4");
        RTreeParams {
            max_entries: m,
            min_entries: (m * 2 / 5).max(2),
            split: SplitStrategy::Quadratic,
        }
    }

    pub fn with_split(mut self, s: SplitStrategy) -> Self {
        self.split = s;
        self
    }

    /// Panic on nonsensical configurations (called by tree constructors).
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be >= 4, got {}", self.max_entries);
        assert!(
            self.min_entries >= 2 && self.min_entries <= self.max_entries / 2,
            "min_entries must be in [2, max/2], got {} (max {})",
            self.min_entries,
            self.max_entries
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RTreeParams::default().validate();
    }

    #[test]
    fn with_max_entries_scales_min() {
        let p = RTreeParams::with_max_entries(10);
        assert_eq!(p.max_entries, 10);
        assert_eq!(p.min_entries, 4);
        p.validate();
        let p2 = RTreeParams::with_max_entries(5);
        assert_eq!(p2.min_entries, 2);
        p2.validate();
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_min_rejected() {
        RTreeParams { max_entries: 8, min_entries: 5, split: SplitStrategy::Linear }.validate();
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn tiny_fanout_rejected() {
        let _ = RTreeParams::with_max_entries(3);
    }
}
