//! Arena node representation.

use neurospatial_geom::Aabb;

/// Index of a node in the tree arena. Doubles as the simulated page id of
/// that node for I/O accounting.
pub type NodeId = usize;

/// Anything storable in an R-Tree: must expose an AABB.
pub trait RTreeObject {
    fn aabb(&self) -> Aabb;
}

impl RTreeObject for Aabb {
    fn aabb(&self) -> Aabb {
        *self
    }
}

impl<T: RTreeObject> RTreeObject for &T {
    fn aabb(&self) -> Aabb {
        (*self).aabb()
    }
}

/// Node payload: leaf objects or child node ids.
#[derive(Debug, Clone)]
pub enum NodeKind<T> {
    Leaf(Vec<T>),
    Inner(Vec<NodeId>),
}

/// One R-Tree node.
#[derive(Debug, Clone)]
pub struct Node<T> {
    /// Tight bounding box of everything below this node.
    pub mbr: Aabb,
    pub parent: Option<NodeId>,
    pub kind: NodeKind<T>,
}

impl<T: RTreeObject> Node<T> {
    pub fn new_leaf() -> Self {
        Node { mbr: Aabb::EMPTY, parent: None, kind: NodeKind::Leaf(Vec::new()) }
    }

    pub fn new_inner() -> Self {
        Node { mbr: Aabb::EMPTY, parent: None, kind: NodeKind::Inner(Vec::new()) }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of entries (objects or children).
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Inner(v) => v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;

    #[test]
    fn aabb_is_its_own_rtree_object() {
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        assert_eq!(RTreeObject::aabb(&b), b);
        let r = &b;
        assert_eq!(RTreeObject::aabb(&r), b);
    }

    #[test]
    fn fresh_nodes() {
        let leaf: Node<Aabb> = Node::new_leaf();
        assert!(leaf.is_leaf());
        assert_eq!(leaf.entry_count(), 0);
        assert!(leaf.mbr.is_empty());
        let inner: Node<Aabb> = Node::new_inner();
        assert!(!inner.is_leaf());
        assert_eq!(inner.entry_count(), 0);
    }
}
