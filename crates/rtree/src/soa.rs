//! Cache-conscious traversal layout: the tree's entry MBRs flattened into
//! structure-of-arrays slabs.
//!
//! The pointer-chasing arena ([`crate::node::Node`]) is the right shape
//! for *building* — splits and reinsertions move whole entry vectors — but
//! the wrong shape for *querying*: every child-MBR intersection test
//! dereferences a `NodeKind`, then a child id, then that child's `Aabb`,
//! touching a fresh cache line per child. `SoaArena` freezes the same
//! tree into six contiguous `f64` lanes (`lo_x/lo_y/lo_z/hi_x/hi_y/hi_z`)
//! plus one payload lane, laid out in BFS order so every node's entries —
//! child MBRs for inner nodes, object AABBs for leaves — are one
//! contiguous slab run. A range query then scans lanes sequentially and
//! only touches the original arena to emit actual hits.
//!
//! The arena is built only by an explicit [`crate::RTree::freeze`] call —
//! never by `bulk_load` itself, so builds that query the pointer arena
//! directly (e.g. the TOUCH join's partitioning tree) pay nothing for it.
//! Any mutation (`insert` / `remove`) invalidates it, and the scratch
//! query paths fall back to an iterative (still allocation-free) walk of
//! the pointer arena until the tree is frozen again.

use crate::node::{NodeKind, RTreeObject};
use crate::{NodeId, RTree};
use neurospatial_geom::{Aabb, Vec3};

/// Epoch-stamped visit marks: a reusable replacement for per-query
/// `vec![false; n]` bitmaps. Clearing between queries is O(1) — bump the
/// epoch instead of zeroing the vector; slot `i` reads as marked only if
/// it was stamped with the *current* epoch. Used for R+ replica
/// de-duplication here and for FLAT's visited-page set.
#[derive(Debug, Default)]
pub struct EpochMarks {
    marks: Vec<u32>,
    epoch: u32,
}

impl EpochMarks {
    /// Begin a pass over `n` slots; every mark reads as unset afterwards.
    pub fn begin(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: one O(n) reset every 2^32 passes.
            self.marks.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.marks[i] == self.epoch
    }

    /// Mark slot `i`; returns `true` if it was unmarked before (first
    /// visit this pass).
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let first = self.marks[i] != self.epoch;
        self.marks[i] = self.epoch;
        first
    }
}

/// Reusable per-query traversal state, shared by every query in the
/// R-Tree family (plain, STR-packed, R+). Create one per thread and
/// reuse it across an entire batch: after the first few queries have
/// grown the buffers, queries allocate nothing.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    /// DFS stack of pending nodes (SoA ids when frozen, arena ids
    /// otherwise).
    pub(crate) stack: Vec<u32>,
    /// Candidate buffer for best-first child ordering (`first_hit`).
    pub(crate) cand: Vec<u32>,
    /// R+ replica de-duplication marks.
    pub(crate) dedup: EpochMarks,
}

impl TraversalScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Flat, `Copy` query counters — the scratch paths' replacement for
/// [`crate::QueryStats`], whose per-level vector would cost one heap
/// allocation per query. Field meanings match the per-query statistics:
/// `nodes_visited` counts every node whose entries were scanned,
/// `leaf_entries_tested` every object AABB compared against the query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalCounters {
    pub nodes_visited: u64,
    pub leaf_entries_tested: u64,
    pub results: u64,
}

/// The frozen structure-of-arrays layout of one tree.
///
/// Nodes are renumbered in BFS order; node `n`'s entries occupy
/// `entry_start[n] .. entry_start[n + 1]` in every lane. For inner nodes
/// an entry is a child (`entry_ref` = the child's SoA id); for leaves an
/// entry is an object (`entry_ref` = its slot in the original leaf's
/// item vector, reachable through `orig`).
#[derive(Debug, Clone, Default)]
pub(crate) struct SoaArena {
    entry_start: Vec<u32>,
    lo_x: Vec<f64>,
    lo_y: Vec<f64>,
    lo_z: Vec<f64>,
    hi_x: Vec<f64>,
    hi_y: Vec<f64>,
    hi_z: Vec<f64>,
    /// Child SoA id (inner) or leaf slot (leaf).
    entry_ref: Vec<u32>,
    /// SoA id → original arena [`NodeId`].
    orig: Vec<u32>,
    is_leaf: Vec<bool>,
    root: u32,
}

impl SoaArena {
    /// Flatten `tree` (rooted at `tree.root`) into BFS slab order.
    pub(crate) fn build<T: RTreeObject>(tree: &RTree<T>) -> Self {
        // BFS order: children of one node become one contiguous id run,
        // and sibling subtrees stay close — the order queries descend in.
        let mut order: Vec<NodeId> = vec![tree.root];
        let mut soa_of = vec![u32::MAX; tree.nodes.len()];
        soa_of[tree.root] = 0;
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            head += 1;
            if let NodeKind::Inner(children) = &tree.nodes[id].kind {
                for &c in children {
                    soa_of[c] = order.len() as u32;
                    order.push(c);
                }
            }
        }

        let total_entries: usize = order.iter().map(|&id| tree.nodes[id].entry_count()).sum();
        let mut a = SoaArena {
            entry_start: Vec::with_capacity(order.len() + 1),
            lo_x: Vec::with_capacity(total_entries),
            lo_y: Vec::with_capacity(total_entries),
            lo_z: Vec::with_capacity(total_entries),
            hi_x: Vec::with_capacity(total_entries),
            hi_y: Vec::with_capacity(total_entries),
            hi_z: Vec::with_capacity(total_entries),
            entry_ref: Vec::with_capacity(total_entries),
            orig: Vec::with_capacity(order.len()),
            is_leaf: Vec::with_capacity(order.len()),
            root: 0,
        };
        for &id in &order {
            a.entry_start.push(a.entry_ref.len() as u32);
            a.orig.push(id as u32);
            match &tree.nodes[id].kind {
                NodeKind::Leaf(items) => {
                    a.is_leaf.push(true);
                    for (slot, o) in items.iter().enumerate() {
                        a.push_entry(o.aabb(), slot as u32);
                    }
                }
                NodeKind::Inner(children) => {
                    a.is_leaf.push(false);
                    for &c in children {
                        a.push_entry(tree.nodes[c].mbr, soa_of[c]);
                    }
                }
            }
        }
        a.entry_start.push(a.entry_ref.len() as u32);
        a
    }

    #[inline]
    fn push_entry(&mut self, bb: Aabb, r: u32) {
        self.lo_x.push(bb.lo.x);
        self.lo_y.push(bb.lo.y);
        self.lo_z.push(bb.lo.z);
        self.hi_x.push(bb.hi.x);
        self.hi_y.push(bb.hi.y);
        self.hi_z.push(bb.hi.z);
        self.entry_ref.push(r);
    }

    /// Entry range of node `n` in the lanes.
    #[inline]
    pub(crate) fn entries(&self, n: u32) -> (usize, usize) {
        (self.entry_start[n as usize] as usize, self.entry_start[n as usize + 1] as usize)
    }

    #[inline]
    pub(crate) fn is_leaf(&self, n: u32) -> bool {
        self.is_leaf[n as usize]
    }

    #[inline]
    pub(crate) fn orig(&self, n: u32) -> NodeId {
        self.orig[n as usize] as NodeId
    }

    #[inline]
    pub(crate) fn entry_ref(&self, i: usize) -> u32 {
        self.entry_ref[i]
    }

    #[inline]
    pub(crate) fn root(&self) -> u32 {
        self.root
    }

    /// Closed-interval intersection of entry `i` against `q` — the exact
    /// comparison sequence [`Aabb::intersects`] performs, over the lanes.
    #[inline]
    pub(crate) fn entry_intersects(&self, i: usize, q: &Aabb) -> bool {
        self.lo_x[i] <= q.hi.x
            && q.lo.x <= self.hi_x[i]
            && self.lo_y[i] <= q.hi.y
            && q.lo.y <= self.hi_y[i]
            && self.lo_z[i] <= q.hi.z
            && q.lo.z <= self.hi_z[i]
    }

    /// Centre of entry `i`'s box — same arithmetic as [`Aabb::center`],
    /// so best-first orderings agree bit-for-bit with the pointer path.
    #[inline]
    pub(crate) fn entry_center(&self, i: usize) -> Vec3 {
        Vec3::new(
            (self.lo_x[i] + self.hi_x[i]) * 0.5,
            (self.lo_y[i] + self.hi_y[i]) * 0.5,
            (self.lo_z[i] + self.hi_z[i]) * 0.5,
        )
    }

    /// Entry `i`'s box reconstructed from the lanes.
    #[inline]
    pub(crate) fn entry_aabb(&self, i: usize) -> Aabb {
        Aabb::new(
            Vec3::new(self.lo_x[i], self.lo_y[i], self.lo_z[i]),
            Vec3::new(self.hi_x[i], self.hi_y[i], self.hi_z[i]),
        )
    }

    /// Minimum x of entry `i`'s box (sweep-order key).
    #[inline]
    pub(crate) fn entry_lo_x(&self, i: usize) -> f64 {
        self.lo_x[i]
    }

    /// Maximum x of entry `i`'s box (sweep expiry bound).
    #[inline]
    pub(crate) fn entry_hi_x(&self, i: usize) -> f64 {
        self.hi_x[i]
    }

    /// Overlap test on the y and z axes only — the x axis is already
    /// guaranteed by a sweep's ordering invariant.
    #[inline]
    pub(crate) fn entry_overlaps_yz(&self, i: usize, q: &Aabb) -> bool {
        self.lo_y[i] <= q.hi.y
            && q.lo.y <= self.hi_y[i]
            && self.lo_z[i] <= q.hi.z
            && q.lo.z <= self.hi_z[i]
    }

    /// Approximate resident bytes of the slabs.
    pub(crate) fn memory_bytes(&self) -> usize {
        let lanes = self.lo_x.capacity()
            + self.lo_y.capacity()
            + self.lo_z.capacity()
            + self.hi_x.capacity()
            + self.hi_y.capacity()
            + self.hi_z.capacity();
        lanes * std::mem::size_of::<f64>()
            + (self.entry_ref.capacity() + self.entry_start.capacity() + self.orig.capacity()) * 4
            + self.is_leaf.capacity()
    }
}

/// Read-only view of a frozen tree's structure-of-arrays layout, for
/// external traversals (e.g. the TOUCH join's assignment descent) that
/// want the cache-conscious lanes without going through the built-in
/// query methods. Obtained from [`crate::RTree::frozen`]; node ids are
/// SoA ids (BFS order), *not* arena [`NodeId`]s — [`orig`](Self::orig)
/// translates when leaf payloads must be fetched from the pointer arena.
#[derive(Debug, Clone, Copy)]
pub struct FrozenView<'t> {
    pub(crate) arena: &'t SoaArena,
}

impl<'t> FrozenView<'t> {
    /// SoA id of the root node (always 0).
    #[inline]
    pub fn root(&self) -> u32 {
        self.arena.root()
    }

    /// Number of nodes in the frozen layout.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.arena.orig.len()
    }

    /// Whether SoA node `n` is a leaf.
    #[inline]
    pub fn is_leaf(&self, n: u32) -> bool {
        self.arena.is_leaf(n)
    }

    /// Entry lane range `[start, end)` of SoA node `n`: child boxes for
    /// inner nodes, object AABBs for leaves.
    #[inline]
    pub fn entries(&self, n: u32) -> (usize, usize) {
        self.arena.entries(n)
    }

    /// Child SoA id (inner node entry) or leaf item slot (leaf entry).
    #[inline]
    pub fn entry_ref(&self, i: usize) -> u32 {
        self.arena.entry_ref(i)
    }

    /// Arena [`NodeId`] of SoA node `n` (for fetching leaf payloads).
    #[inline]
    pub fn orig(&self, n: u32) -> NodeId {
        self.arena.orig(n)
    }

    /// Closed-interval intersection of entry `i` against `q`.
    #[inline]
    pub fn entry_intersects(&self, i: usize, q: &Aabb) -> bool {
        self.arena.entry_intersects(i, q)
    }

    /// Entry `i`'s box reconstructed from the lanes.
    #[inline]
    pub fn entry_aabb(&self, i: usize) -> Aabb {
        self.arena.entry_aabb(i)
    }

    /// Minimum x of entry `i`'s box.
    #[inline]
    pub fn entry_lo_x(&self, i: usize) -> f64 {
        self.arena.entry_lo_x(i)
    }

    /// Maximum x of entry `i`'s box.
    #[inline]
    pub fn entry_hi_x(&self, i: usize) -> f64 {
        self.arena.entry_hi_x(i)
    }

    /// y/z-axis overlap of entry `i` against `q` (x handled by a sweep).
    #[inline]
    pub fn entry_overlaps_yz(&self, i: usize, q: &Aabb) -> bool {
        self.arena.entry_overlaps_yz(i, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;

    fn cubes(n: usize) -> Vec<Aabb> {
        (0..n)
            .map(|i| {
                let x = (i % 13) as f64 * 2.0;
                let y = ((i / 13) % 11) as f64 * 2.0;
                let z = (i / 143) as f64 * 2.0;
                Aabb::cube(Vec3::new(x, y, z), 0.6)
            })
            .collect()
    }

    #[test]
    fn arena_mirrors_the_tree() {
        let mut t = RTree::bulk_load(cubes(500), RTreeParams::with_max_entries(16));
        assert!(!t.is_frozen(), "bulk_load does not freeze on its own");
        t.freeze();
        let soa = t.soa.as_ref().expect("freeze builds the arena");
        assert_eq!(soa.orig.len(), t.node_count());
        // Every leaf entry's lanes reproduce the original object AABB.
        let mut leaf_entries = 0usize;
        for n in 0..soa.orig.len() as u32 {
            let (s, e) = soa.entries(n);
            if soa.is_leaf(n) {
                let items = t.leaf_objects(soa.orig(n));
                assert_eq!(items.len(), e - s);
                for (slot, o) in items.iter().enumerate() {
                    let i = s + slot;
                    assert_eq!(soa.entry_ref(i) as usize, slot);
                    assert_eq!(
                        (soa.lo_x[i], soa.hi_x[i], soa.lo_y[i], soa.hi_y[i]),
                        (o.lo.x, o.hi.x, o.lo.y, o.hi.y)
                    );
                    leaf_entries += 1;
                }
            } else {
                for i in s..e {
                    let child = soa.entry_ref(i);
                    let mbr = t.node_mbr(soa.orig(child));
                    assert_eq!((soa.lo_x[i], soa.hi_z[i]), (mbr.lo.x, mbr.hi.z));
                }
            }
        }
        assert_eq!(leaf_entries, t.len());
    }

    #[test]
    fn mutation_invalidates_and_freeze_restores() {
        let mut t = RTree::bulk_load(cubes(200), RTreeParams::with_max_entries(8));
        t.freeze();
        assert!(t.is_frozen());
        t.insert(Aabb::cube(Vec3::new(50.0, 50.0, 50.0), 1.0));
        assert!(!t.is_frozen());
        t.freeze();
        assert!(t.is_frozen());
        let probe = cubes(1)[0];
        assert!(t.remove(&probe));
        assert!(!t.is_frozen());
    }

    #[test]
    fn frozen_view_mirrors_the_pointer_arena() {
        let mut t = RTree::bulk_load(cubes(300), RTreeParams::with_max_entries(8));
        assert!(t.frozen().is_none(), "unfrozen trees expose no view");
        t.freeze();
        let v = t.frozen().expect("frozen");
        assert_eq!(v.node_count(), t.node_count());
        // Descend every node: inner entry boxes equal child MBRs, leaf
        // entry boxes equal the stored objects, lane getters agree.
        for n in 0..v.node_count() as u32 {
            let (s, e) = v.entries(n);
            if v.is_leaf(n) {
                let items = t.leaf_objects(v.orig(n));
                assert_eq!(items.len(), e - s);
                for i in s..e {
                    let o = items[v.entry_ref(i) as usize];
                    assert_eq!(v.entry_lo_x(i), o.lo.x);
                    assert_eq!(v.entry_hi_x(i), o.hi.x);
                    assert!(v.entry_intersects(i, &o));
                    assert!(v.entry_overlaps_yz(i, &o));
                }
            } else {
                for i in s..e {
                    let mbr = t.node_mbr(v.orig(v.entry_ref(i)));
                    assert!(v.entry_intersects(i, &mbr));
                    assert_eq!(v.entry_lo_x(i), mbr.lo.x);
                }
            }
        }
    }

    #[test]
    fn epoch_wrap_resets_marks() {
        let mut m = EpochMarks::default();
        m.begin(4);
        assert!(m.mark(2), "first visit");
        assert!(!m.mark(2), "second visit same pass");
        assert!(m.is_marked(2));
        m.epoch = u32::MAX; // force the wrap path
        m.begin(4);
        assert!((0..4).all(|i| !m.is_marked(i)), "stale marks cleared after wrap");
        assert!(m.mark(2), "slot usable again");
    }
}
