//! Property tests: the R-Tree is an exact index — every query type must
//! agree with brute force on arbitrary inputs, under arbitrary
//! interleavings of bulk load, insert and remove.

use neurospatial_geom::{Aabb, Vec3};
use neurospatial_rtree::{validation::validate, RTree, RTreeParams, SplitStrategy};
use proptest::prelude::*;

fn small_box() -> impl Strategy<Value = Aabb> {
    ((-50.0..50.0, -50.0..50.0, -50.0..50.0), 0.1..8.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

fn params() -> impl Strategy<Value = RTreeParams> {
    (
        4usize..32,
        prop_oneof![
            Just(SplitStrategy::Linear),
            Just(SplitStrategy::Quadratic),
            Just(SplitStrategy::RStar)
        ],
    )
        .prop_map(|(m, s)| RTreeParams::with_max_entries(m).with_split(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_loaded_range_queries_exact(
        objs in prop::collection::vec(small_box(), 0..600),
        queries in prop::collection::vec(small_box(), 1..10),
        p in params(),
    ) {
        let tree = RTree::bulk_load(objs.clone(), p);
        validate(&tree).map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), objs.len());
        for q in &queries {
            let (hits, stats) = tree.range_query(q);
            let want = objs.iter().filter(|o| o.intersects(q)).count();
            prop_assert_eq!(hits.len(), want);
            prop_assert_eq!(stats.results as usize, want);
        }
    }

    #[test]
    fn inserted_range_queries_exact(
        objs in prop::collection::vec(small_box(), 0..300),
        q in small_box(),
        p in params(),
    ) {
        let mut tree = RTree::new(p);
        for o in &objs {
            tree.insert(*o);
        }
        validate(&tree).map_err(TestCaseError::fail)?;
        let (hits, _) = tree.range_query(&q);
        let want = objs.iter().filter(|o| o.intersects(&q)).count();
        prop_assert_eq!(hits.len(), want);
    }

    #[test]
    fn first_hit_agrees_with_range_query(
        objs in prop::collection::vec(small_box(), 0..400),
        q in small_box(),
    ) {
        let tree = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(8));
        let (hit, _) = tree.first_hit(&q);
        let any = objs.iter().any(|o| o.intersects(&q));
        prop_assert_eq!(hit.is_some(), any);
        if let Some(h) = hit {
            prop_assert!(h.intersects(&q));
        }
    }

    #[test]
    fn knn_matches_sorted_distances(
        objs in prop::collection::vec(small_box(), 1..300),
        px in -60.0..60.0f64, py in -60.0..60.0f64, pz in -60.0..60.0f64,
        k in 1usize..20,
    ) {
        let p = Vec3::new(px, py, pz);
        let tree = RTree::bulk_load(objs.clone(), RTreeParams::with_max_entries(8));
        let (got, _) = tree.knn(p, k);
        let mut want: Vec<f64> = objs.iter().map(|o| o.min_distance_to_point(p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.distance - w).abs() < 1e-9);
        }
    }

    #[test]
    fn mixed_workload_stays_consistent(
        initial in prop::collection::vec(small_box(), 0..150),
        ops in prop::collection::vec((any::<bool>(), small_box()), 0..150),
        q in small_box(),
    ) {
        // Shadow model: a plain Vec with multiset semantics.
        let mut tree = RTree::new(RTreeParams::with_max_entries(8));
        let mut shadow: Vec<Aabb> = Vec::new();
        for o in &initial {
            tree.insert(*o);
            shadow.push(*o);
        }
        for (is_insert, o) in &ops {
            if *is_insert {
                tree.insert(*o);
                shadow.push(*o);
            } else {
                // Remove an arbitrary existing object (or a miss).
                let target = shadow.first().copied().unwrap_or(*o);
                let removed = tree.remove(&target);
                let in_shadow = shadow.iter().position(|s| *s == target);
                prop_assert_eq!(removed, in_shadow.is_some());
                if let Some(i) = in_shadow {
                    shadow.swap_remove(i);
                }
            }
        }
        validate(&tree).map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), shadow.len());
        let (hits, _) = tree.range_query(&q);
        let want = shadow.iter().filter(|o| o.intersects(&q)).count();
        prop_assert_eq!(hits.len(), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rplus_tree_is_exact_and_disjoint(
        objs in prop::collection::vec(small_box(), 0..400),
        queries in prop::collection::vec(small_box(), 1..6),
        cap in 2usize..32,
    ) {
        use neurospatial_rtree::RPlusTree;
        let t = RPlusTree::build(objs.clone(), cap);
        t.validate().map_err(TestCaseError::fail)?;
        prop_assert!(t.replication_factor() >= 1.0 || objs.is_empty());
        for q in &queries {
            let (hits, _) = t.range_query(q);
            let want = objs.iter().filter(|o| o.intersects(q)).count();
            prop_assert_eq!(hits.len(), want, "query {}", q);
        }
    }
}
