//! Wire-protocol safety: arbitrary frames survive encode→decode→encode
//! byte-identically, and corrupt bytes — truncations, trailing garbage,
//! unknown opcodes, bad flag bits — always come back as a typed
//! [`ProtocolError`], never a panic.

use neurospatial::geom::{Aabb, Segment, Vec3};
use neurospatial::model::{NavigationPath, NeuronSegment};
use neurospatial::{Neighbor, QueryStats, WalkthroughMethod};
use neurospatial_server::protocol::{self as p, ProtocolError, QueryDesc, Request, Response};
use proptest::prelude::*;
use proptest::Union;

fn coord() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coord(), coord(), coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (vec3(), vec3()).prop_map(|(lo, hi)| Aabb { lo, hi })
}

fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("axons".to_string()),
        Just("dendrites".to_string()),
        Just(String::new()),
        Just("päp-ülation ✓".to_string()),
    ]
}

fn opt<S: Strategy + 'static>(s: S) -> Union<Option<S::Value>>
where
    S::Value: Clone,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

fn desc() -> impl Strategy<Value = QueryDesc> {
    ((any::<u32>(), opt(name())), (opt(any::<u32>()), opt(any::<u32>()), any::<bool>())).prop_map(
        |((tenant, population), (filter_id, limit, allow_partial))| QueryDesc {
            tenant,
            population,
            filter_id,
            limit,
            allow_partial,
        },
    )
}

fn segment() -> impl Strategy<Value = NeuronSegment> {
    ((any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()), (vec3(), vec3(), 0.01..9.0f64))
        .prop_map(|((id, neuron, section, index_on_section), (p0, p1, radius))| NeuronSegment {
            id,
            neuron,
            section,
            index_on_section,
            geom: Segment { p0, p1, radius },
        })
}

fn nav_path() -> impl Strategy<Value = NavigationPath> {
    (
        (any::<u32>(), prop::collection::vec(any::<u32>(), 0..6)),
        prop::collection::vec(vec3(), 0..5),
        prop::collection::vec(aabb(), 0..5),
        coord(),
    )
        .prop_map(|((neuron, sections), waypoints, queries, view_radius)| NavigationPath {
            neuron,
            sections,
            waypoints,
            queries,
            view_radius,
        })
}

fn method() -> impl Strategy<Value = WalkthroughMethod> {
    (0..WalkthroughMethod::ALL.len()).prop_map(|i| WalkthroughMethod::ALL[i])
}

/// Every request variant except `Explain` (which wraps these).
fn plain_request() -> Union<Request> {
    prop_oneof![
        (desc(), aabb()).prop_map(|(desc, region)| Request::Range { desc, region }),
        (desc(), aabb()).prop_map(|(desc, region)| Request::Count { desc, region }),
        (desc(), vec3(), any::<u32>()).prop_map(|(desc, p, k)| Request::Knn { desc, p, k }),
        (desc(), name(), coord()).prop_map(|(desc, other, epsilon)| Request::Touching {
            desc,
            other,
            epsilon
        }),
        (any::<u32>(), method(), nav_path())
            .prop_map(|(tenant, method, path)| Request::Walkthrough { tenant, method, path }),
        any::<u32>().prop_map(|tenant| Request::Stats { tenant }),
        Just(Request::Health),
        (any::<u32>(), segment()).prop_map(|(tenant, segment)| Request::Insert { tenant, segment }),
        (any::<u32>(), any::<u64>()).prop_map(|(tenant, id)| Request::Remove { tenant, id }),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    (plain_request(), any::<u8>()).prop_map(|(req, wrap)| {
        // Explain may wrap anything but Stats, Health, writes (and itself).
        if wrap % 3 == 0
            && !matches!(
                req,
                Request::Stats { .. }
                    | Request::Health
                    | Request::Insert { .. }
                    | Request::Remove { .. }
            )
        {
            Request::Explain(Box::new(req))
        } else {
            req
        }
    })
}

fn stats() -> impl Strategy<Value = QueryStats> {
    (
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (results, nodes_read),
                (objects_tested, reseeds),
                (cache_hits, cache_misses, cache_evictions),
                (retries, pages_quarantined),
            )| QueryStats {
                results,
                nodes_read,
                objects_tested,
                reseeds,
                cache_hits,
                cache_misses,
                cache_evictions,
                retries,
                pages_quarantined,
            },
        )
}

fn wal_wire() -> impl Strategy<Value = p::WalWire> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(
            |(
                (last_lsn, wal_bytes, pending_ops),
                (epoch, replayed_ops, checkpoints, recovered_torn_tail),
            )| p::WalWire {
                last_lsn,
                wal_bytes,
                pending_ops,
                epoch,
                replayed_ops,
                checkpoints,
                recovered_torn_tail,
            },
        )
}

fn response() -> Union<Response> {
    prop_oneof![
        prop::collection::vec(segment(), 0..9).prop_map(Response::Segments),
        prop::collection::vec((segment(), 0.0..50.0f64), 0..9).prop_map(|v| Response::Neighbors(
            v.into_iter().map(|(segment, distance)| Neighbor { segment, distance }).collect()
        )),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..20).prop_map(Response::Pairs),
        stats().prop_map(Response::Done),
        (any::<u64>(), stats()).prop_map(|(count, stats)| Response::Count { count, stats }),
        (
            (name(), name(), opt(any::<u32>()), opt(name())),
            ((any::<u32>(), any::<u32>()), (any::<u64>(), any::<bool>()))
        )
            .prop_map(
                |(
                    (operation, backend, pushdown_limit, population),
                    ((shards_total, shards_probed), (estimated_reads, pushdown_filter)),
                )| {
                    Response::Plan(p::PlanWire {
                        operation,
                        backend,
                        shards_total,
                        shards_probed,
                        estimated_reads,
                        pushdown_filter,
                        pushdown_limit,
                        population,
                    })
                }
            ),
        ((any::<u32>(), any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>(), any::<u64>()))
            .prop_map(|((tenant, queries, results), (nodes_read, objects_tested, reseeds))| {
                Response::Stats(p::TenantTotals {
                    tenant,
                    queries,
                    results,
                    nodes_read,
                    objects_tested,
                    reseeds,
                })
            }),
        (any::<u16>(), name()).prop_map(|(code, message)| Response::Error { code, message }),
        Just(Response::Busy),
        (any::<bool>(), prop::collection::vec(any::<u64>(), 0..6), opt(wal_wire())).prop_map(
            |(degraded, quarantined, wal)| {
                Response::Health(p::HealthReport { paged: true, degraded, quarantined, wal })
            }
        ),
        stats().prop_map(Response::Timeout),
        (any::<u64>(), any::<u64>())
            .prop_map(|(lsn, pending)| Response::WriteAck(p::WriteAckWire { lsn, pending })),
        ((any::<u32>(), coord()), ((any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>())))
            .prop_map(
                |(
                    (steps, total_stall_ms),
                    ((demand_misses, demand_hits), (prefetched, useful_prefetched)),
                )| {
                    Response::Walkthrough(p::WalkSummary {
                        steps,
                        total_stall_ms,
                        demand_misses,
                        demand_hits,
                        prefetched,
                        useful_prefetched,
                    })
                }
            ),
    ]
}

/// Split an encoded frame into (opcode, payload), checking the header.
fn split(frame: &[u8]) -> (u8, &[u8]) {
    assert!(frame.len() >= 5, "frame too short: {frame:?}");
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    assert_eq!(len, frame.len() - 4, "length header disagrees with frame");
    (frame[4], &frame[5..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_roundtrip_is_byte_identical(req in request()) {
        let mut bytes = Vec::new();
        p::encode_request(&req, &mut bytes);
        let (opcode, payload) = split(&bytes);
        let decoded = p::decode_request(opcode, payload).expect("valid frame decodes");
        let mut again = Vec::new();
        p::encode_request(&decoded, &mut again);
        prop_assert_eq!(&bytes, &again);
        // The allocation-free view decodes the same request.
        let view = p::decode_request_view(opcode, payload).expect("view decodes");
        let mut via_view = Vec::new();
        p::encode_request(&view.into_owned(), &mut via_view);
        prop_assert_eq!(&bytes, &via_view);
    }

    #[test]
    fn response_roundtrip_is_byte_identical(resp in response()) {
        let mut bytes = Vec::new();
        p::encode_response(&resp, &mut bytes);
        let (opcode, payload) = split(&bytes);
        let decoded = p::decode_response(opcode, payload).expect("valid frame decodes");
        prop_assert_eq!(&decoded, &resp);
        let mut again = Vec::new();
        p::encode_response(&decoded, &mut again);
        prop_assert_eq!(&bytes, &again);
    }

    #[test]
    fn truncated_request_is_a_typed_error(req in request(), cut in 0.0..1.0f64) {
        let mut bytes = Vec::new();
        p::encode_request(&req, &mut bytes);
        let (opcode, payload) = split(&bytes);
        if payload.is_empty() {
            return Ok(()); // HEALTH: nothing to truncate
        }
        // Every strict prefix of the payload must fail to decode.
        let cut = (payload.len() as f64 * cut) as usize;
        let err = p::decode_request(opcode, &payload[..cut.min(payload.len() - 1)]);
        prop_assert!(err.is_err(), "prefix decoded: {:?}", err);
    }

    #[test]
    fn trailing_garbage_is_a_typed_error(req in request(), extra in any::<u8>()) {
        let mut bytes = Vec::new();
        p::encode_request(&req, &mut bytes);
        let (opcode, payload) = split(&bytes);
        let mut longer = payload.to_vec();
        longer.push(extra);
        prop_assert!(p::decode_request(opcode, &longer).is_err());
    }

    #[test]
    fn truncated_response_is_a_typed_error(resp in response(), cut in 0.0..1.0f64) {
        let mut bytes = Vec::new();
        p::encode_response(&resp, &mut bytes);
        let (opcode, payload) = split(&bytes);
        if payload.is_empty() {
            return Ok(()); // BUSY: nothing to truncate
        }
        let cut = (payload.len() as f64 * cut) as usize;
        let err = p::decode_response(opcode, &payload[..cut.min(payload.len() - 1)]);
        prop_assert!(err.is_err(), "prefix decoded: {:?}", err);
    }

    #[test]
    fn arbitrary_bytes_never_panic(opcode in any::<u8>(), bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Whatever comes off the wire, decoding returns — it never panics.
        let _ = p::decode_request(opcode, &bytes);
        let _ = p::decode_response(opcode, &bytes);
        let mut sink = Vec::new();
        let _ = p::decode_segment_chunk_into(&bytes, &mut sink);
        let _ = p::decode_done(&bytes);
        let _ = p::decode_count(&bytes);
    }
}

#[test]
fn unknown_opcodes_are_reported_as_such() {
    for opcode in [0x00u8, 0x0C, 0x42, 0x80, 0x8F, 0xFF] {
        assert_eq!(
            p::decode_request(opcode, &[]).unwrap_err(),
            ProtocolError::UnknownOpcode(opcode)
        );
        assert_eq!(
            p::decode_response(opcode, &[]).unwrap_err(),
            ProtocolError::UnknownOpcode(opcode)
        );
    }
}

#[test]
fn explain_cannot_wrap_writes() {
    // Hand-splice: EXPLAIN frame whose inner opcode is INSERT.
    let mut payload = vec![p::OP_INSERT];
    payload.extend_from_slice(&[0u8; 80]); // tenant + segment
    assert_eq!(
        p::decode_request(p::OP_EXPLAIN, &payload).unwrap_err(),
        ProtocolError::Malformed("EXPLAIN cannot wrap a write")
    );
    let mut payload = vec![p::OP_REMOVE];
    payload.extend_from_slice(&[0u8; 12]); // tenant + id
    assert_eq!(
        p::decode_request(p::OP_EXPLAIN, &payload).unwrap_err(),
        ProtocolError::Malformed("EXPLAIN cannot wrap a write")
    );
}

#[test]
fn bad_flag_bits_are_malformed() {
    // A hand-built range request whose QueryDesc carries an undefined
    // flag bit: tenant=0, flags=0x80, then a region.
    let mut payload = vec![0, 0, 0, 0, 0x80];
    payload.extend_from_slice(&[0u8; 48]);
    assert!(matches!(p::decode_request(p::OP_RANGE, &payload), Err(ProtocolError::Malformed(_))));
}

#[test]
fn out_of_range_walkthrough_method_is_malformed() {
    // tenant=0, method index 250 — far past WalkthroughMethod::ALL.
    let payload = vec![0, 0, 0, 0, 250];
    assert!(matches!(
        p::decode_request(p::OP_WALKTHROUGH, &payload),
        Err(ProtocolError::Malformed(_) | ProtocolError::Truncated)
    ));
}

#[test]
fn non_utf8_population_is_malformed() {
    // tenant=0, flags=POPULATION, name len=2, bytes 0xFF 0xFE.
    let mut payload = vec![0, 0, 0, 0, p::FLAG_POPULATION, 2, 0, 0xFF, 0xFE];
    payload.extend_from_slice(&[0u8; 48]);
    assert_eq!(
        p::decode_request(p::OP_RANGE, &payload).unwrap_err(),
        ProtocolError::Malformed("non-UTF-8 name")
    );
}

#[test]
fn explain_cannot_nest_and_cannot_wrap_stats() {
    let mut nested = Vec::new();
    p::encode_request(&Request::Explain(Box::new(Request::Stats { tenant: 1 })), &mut nested);
    let opcode = nested[4];
    assert_eq!(
        p::decode_request(opcode, &nested[5..]).unwrap_err(),
        ProtocolError::Malformed("EXPLAIN cannot wrap STATS")
    );

    let mut nested = Vec::new();
    p::encode_request(&Request::Explain(Box::new(Request::Health)), &mut nested);
    assert_eq!(
        p::decode_request(nested[4], &nested[5..]).unwrap_err(),
        ProtocolError::Malformed("EXPLAIN cannot wrap HEALTH")
    );

    // EXPLAIN(EXPLAIN(...)): splice an explain opcode inside an explain.
    let mut inner = Vec::new();
    p::encode_request(
        &Request::Explain(Box::new(Request::Count {
            desc: QueryDesc::tenant(0),
            region: Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 1.0),
        })),
        &mut inner,
    );
    let mut doubled = vec![p::OP_EXPLAIN];
    doubled.extend_from_slice(&inner[4..]); // opcode + payload of the explain
    assert_eq!(
        p::decode_request(p::OP_EXPLAIN, &doubled[1..]).unwrap_err(),
        ProtocolError::Malformed("EXPLAIN cannot nest")
    );
}

#[test]
fn chunk_counts_are_validated_before_allocation() {
    // A segment chunk claiming u32::MAX entries with a 4-byte payload
    // must fail without trying to reserve 300+ GiB.
    let payload = u32::MAX.to_le_bytes().to_vec();
    let mut out = Vec::new();
    assert_eq!(p::decode_segment_chunk_into(&payload, &mut out), Err(ProtocolError::Truncated));
    assert!(out.is_empty());
}

#[test]
fn read_frame_rejects_oversized_and_zero_lengths() {
    for len in [0u32, (p::MAX_FRAME as u32) + 1, u32::MAX] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let mut buf = Vec::new();
        let err = p::read_frame(&mut &bytes[..], &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len={len}");
    }
}

#[test]
fn metrics_frames_roundtrip_and_reject_corruption() {
    use neurospatial::obs::MetricsRegistry;

    // An empty request frame round-trips.
    let mut req = Vec::new();
    p::encode_request(&Request::Metrics, &mut req);
    let (len, rest) = req.split_at(4);
    assert_eq!(u32::from_le_bytes(len.try_into().unwrap()) as usize, rest.len());
    assert!(matches!(p::decode_request(rest[0], &rest[1..]), Ok(Request::Metrics)));

    // A populated snapshot survives encode → decode bit-for-bit.
    let reg = MetricsRegistry::new();
    reg.counter("reqs_total").add(41);
    reg.gauge("resident").set(-7);
    let h = reg.histogram("lat_ns");
    for v in [3, 900, 1 << 33] {
        h.record(v);
    }
    let snap = reg.snapshot();
    let mut resp = Vec::new();
    p::encode_metrics_result(&snap, &mut resp);
    let (len, rest) = resp.split_at(4);
    assert_eq!(u32::from_le_bytes(len.try_into().unwrap()) as usize, rest.len());
    assert_eq!(rest[0], p::OP_METRICS_RESULT);
    match p::decode_response(rest[0], &rest[1..]) {
        Ok(Response::Metrics(decoded)) => assert_eq!(decoded, snap),
        other => panic!("metrics frame should decode, got {other:?}"),
    }

    // Truncation at every prefix is a typed error, never a panic.
    let payload = &rest[1..];
    for cut in 0..payload.len() {
        assert!(
            matches!(
                p::decode_response(p::OP_METRICS_RESULT, &payload[..cut]),
                Err(ProtocolError::Malformed(_))
            ),
            "truncated metrics payload at {cut} must be rejected"
        );
    }

    // EXPLAIN cannot wrap METRICS.
    assert!(matches!(
        p::decode_request(p::OP_EXPLAIN, &[p::OP_METRICS]),
        Err(ProtocolError::Malformed(_))
    ));
}
