//! End-to-end: a real server on a loopback socket must answer every
//! operation with exactly what the embedded query API produces — on all
//! four index backends — and its admission control must shed load the
//! way the config promises.

use neurospatial::geom::{Aabb, Vec3};
use neurospatial::model::{Circuit, CircuitBuilder, NeuronSegment};
use neurospatial::{IndexBackend, NeuroDb, WalkthroughMethod};
use neurospatial_server::protocol::{self as p, QueryDescView, Request};
use neurospatial_server::{serve_with, Client, ClientError, FilterRegistry, ServerConfig};
use std::time::Duration;

fn circuit() -> Circuit {
    CircuitBuilder::new(17).neurons(30).build()
}

fn build_db(circuit: &Circuit, backend: IndexBackend) -> NeuroDb {
    NeuroDb::builder()
        .circuit(circuit)
        .backend(backend)
        .split_populations("axons", "dendrites", |s| s.neuron.is_multiple_of(2))
        .build()
        .expect("database builds")
}

fn even(s: &NeuronSegment) -> bool {
    s.neuron.is_multiple_of(2)
}

fn regions() -> Vec<Aabb> {
    vec![
        Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 40.0),
        Aabb::cube(Vec3::new(15.0, -10.0, 5.0), 12.0),
        Aabb::cube(Vec3::new(-25.0, 20.0, -8.0), 6.0),
        Aabb::cube(Vec3::new(500.0, 500.0, 500.0), 1.0), // empty
    ]
}

/// Every operation, every backend: the bytes that come back over TCP
/// decode to exactly what `collect()` produces in-process.
#[test]
fn server_responses_match_local_execution_on_all_backends() {
    let circuit = circuit();
    for backend in IndexBackend::ALL {
        let db = build_db(&circuit, backend);
        let even_pred = |s: &NeuronSegment| even(s);
        let mut filters = FilterRegistry::new();
        filters.register(1, &even_pred);

        serve_with(&db, &filters, &ServerConfig::default(), |handle| {
            let mut client = Client::connect(handle.addr()).expect("connect");
            let mut segments = Vec::new();
            let mut neighbors = Vec::new();
            let mut pairs = Vec::new();
            let plain = QueryDescView { tenant: 1, ..Default::default() };
            let composed = QueryDescView {
                tenant: 1,
                population: Some("axons"),
                filter_id: Some(1),
                limit: Some(7),
                ..Default::default()
            };

            for region in regions() {
                // Plain range: segments and traversal stats byte-match.
                let stats = client.range(&plain, &region, &mut segments).expect("range");
                let local = db.query().range(region).collect().expect("local range");
                assert_eq!(segments, local.segments, "{backend:?} range {region:?}");
                assert_eq!(stats, local.stats, "{backend:?} range stats {region:?}");

                // Full pushdown composition: population + filter + limit.
                let stats = client.range(&composed, &region, &mut segments).expect("pushdown");
                let local = db
                    .query()
                    .range(region)
                    .in_population("axons")
                    .filter(&even)
                    .limit(7)
                    .collect()
                    .expect("local pushdown");
                assert_eq!(segments, local.segments, "{backend:?} pushdown {region:?}");
                assert_eq!(stats, local.stats, "{backend:?} pushdown stats {region:?}");

                // Count terminal agrees with materializing locally.
                let (count, cstats) = client.count(&plain, &region).expect("count");
                let local = db.query().range(region).collect().expect("local count");
                assert_eq!(count, local.segments.len() as u64, "{backend:?} count {region:?}");
                assert_eq!(cstats, local.stats, "{backend:?} count stats {region:?}");
            }

            // KNN, plain and composed.
            let probe = Vec3::new(5.0, 5.0, 5.0);
            let stats = client.knn(&plain, probe, 5, &mut neighbors).expect("knn");
            let (local, local_stats) = db.query().knn(probe, 5).collect().expect("local knn");
            assert_eq!(neighbors, local, "{backend:?} knn");
            assert_eq!(stats, local_stats, "{backend:?} knn stats");

            let stats = client.knn(&composed, probe, 5, &mut neighbors).expect("knn pushdown");
            let (local, local_stats) = db
                .query()
                .knn(probe, 5)
                .in_population("axons")
                .filter(&even)
                .limit(7)
                .collect()
                .expect("local knn pushdown");
            assert_eq!(neighbors, local, "{backend:?} knn pushdown");
            assert_eq!(stats, local_stats, "{backend:?} knn pushdown stats");

            // Touching join: pairs in emission order, stats mapped from
            // the join's comparison counters.
            let axons =
                QueryDescView { tenant: 1, population: Some("axons"), ..Default::default() };
            let stats = client.touching(&axons, "dendrites", 2.0, &mut pairs).expect("touching");
            let local = db
                .query()
                .touching("dendrites", 2.0)
                .in_population("axons")
                .collect()
                .expect("local touching");
            assert_eq!(pairs, local.pairs, "{backend:?} touching");
            assert_eq!(stats.results, local.pairs.len() as u64);
            assert_eq!(
                stats.objects_tested,
                local.stats.filter_comparisons + local.stats.refine_comparisons,
                "{backend:?} touching comparison counters"
            );

            // EXPLAIN returns the same plan the local builder prints.
            let region = regions()[0];
            let wire = client
                .explain(&Request::Range { desc: composed.into_owned(), region })
                .expect("explain");
            let local =
                db.query().range(region).in_population("axons").filter(&even).limit(7).explain();
            assert_eq!(wire.operation, local.operation);
            assert_eq!(wire.backend, local.backend.to_string());
            assert_eq!(wire.shards_total, local.shards_total as u32);
            assert_eq!(wire.shards_probed, local.shards_probed as u32);
            assert_eq!(wire.estimated_reads, local.estimated_reads);
            assert_eq!(wire.pushdown_filter, local.pushdown_filter);
            assert_eq!(wire.pushdown_limit, local.pushdown_limit.map(|l| l as u32));
            assert_eq!(wire.population, local.population);

            // Walkthrough: FLAT replays it; tree backends refuse with a
            // typed application error.
            let path = db.navigation_path(&circuit, 3, 20.0, 8.0).expect("path");
            let walk = client.walkthrough(1, WalkthroughMethod::Scout, &path);
            if backend == IndexBackend::Flat {
                let summary = walk.expect("flat walkthrough");
                let local = db.walkthrough(&path, WalkthroughMethod::Scout).expect("local walk");
                assert_eq!(summary.steps, local.steps.len() as u32);
                assert_eq!(summary.demand_misses, local.total_demand_misses);
                assert_eq!(summary.demand_hits, local.total_demand_hits);
                assert_eq!(summary.prefetched, local.total_prefetched);
                assert_eq!(summary.useful_prefetched, local.useful_prefetched);
            } else {
                match walk {
                    Err(ClientError::Server { code, .. }) => assert_eq!(code, p::ERR_UNSUPPORTED),
                    other => panic!("{backend:?} walkthrough should be refused, got {other:?}"),
                }
            }

            // Application errors are typed and leave the connection usable.
            let bad_pop =
                QueryDescView { tenant: 1, population: Some("soma"), ..Default::default() };
            match client.count(&bad_pop, &regions()[0]) {
                Err(ClientError::Server { code, .. }) => {
                    assert_eq!(code, p::ERR_UNKNOWN_POPULATION)
                }
                other => panic!("unknown population should fail, got {other:?}"),
            }
            let bad_filter = QueryDescView { tenant: 1, filter_id: Some(99), ..Default::default() };
            match client.count(&bad_filter, &regions()[0]) {
                Err(ClientError::Server { code, .. }) => assert_eq!(code, p::ERR_UNKNOWN_FILTER),
                other => panic!("unknown filter should fail, got {other:?}"),
            }
            client.count(&plain, &regions()[0]).expect("connection survives app errors");
        })
        .expect("serve");
    }
}

/// Per-tenant accounting: STATS reports exactly the queries a tenant
/// ran, with field-wise stat sums, and tenants do not bleed together.
#[test]
fn stats_accumulate_per_tenant() {
    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();

    serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        let region = Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 25.0);

        let a = QueryDescView { tenant: 70, ..Default::default() };
        let b = QueryDescView { tenant: 71, ..Default::default() };
        let mut expect_a = neurospatial::QueryStats::default();
        for _ in 0..3 {
            let stats = client.range(&a, &region, &mut segments).expect("range");
            expect_a.results += stats.results;
            expect_a.nodes_read += stats.nodes_read;
            expect_a.objects_tested += stats.objects_tested;
            expect_a.reseeds += stats.reseeds;
        }
        client.count(&b, &region).expect("count");

        let totals = client.stats(70).expect("stats");
        assert_eq!(totals.tenant, 70);
        assert_eq!(totals.queries, 3);
        assert_eq!(totals.results, expect_a.results);
        assert_eq!(totals.nodes_read, expect_a.nodes_read);
        assert_eq!(totals.objects_tested, expect_a.objects_tested);
        assert_eq!(totals.reseeds, expect_a.reseeds);

        let totals = client.stats(71).expect("stats");
        assert_eq!(totals.queries, 1);

        // A tenant nobody has billed to reports zeroes, not an error.
        let totals = client.stats(9999).expect("stats");
        assert_eq!(totals.queries, 0);
    })
    .expect("serve");
}

/// With one worker and a zero-length queue, a second concurrent
/// connection must be shed with `BUSY` before any request is read — and
/// capacity must come back once the first connection closes.
#[test]
fn admission_control_sheds_and_recovers() {
    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();
    let cfg =
        ServerConfig { workers: 1, queue: 0, poll: Duration::from_millis(5), ..Default::default() };

    serve_with(&db, &filters, &cfg, |handle| {
        let region = Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 20.0);
        let plain = QueryDescView { tenant: 1, ..Default::default() };

        // Claim the only worker and prove it by completing a request.
        let mut holder = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        holder.range(&plain, &region, &mut segments).expect("holder range");

        // The shed path: read the BUSY frame without sending anything,
        // so the reject is observed even though the server immediately
        // closes the socket.
        let mut shed = std::net::TcpStream::connect(handle.addr()).expect("connect");
        shed.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = Vec::new();
        let (op, payload) = p::read_frame(&mut shed, &mut buf).expect("busy frame");
        assert_eq!(op, p::OP_BUSY);
        assert!(payload.is_empty());
        drop(shed);
        assert!(handle.metrics().rejected.load(std::sync::atomic::Ordering::Relaxed) >= 1);

        // Release the worker; a fresh connection must be admitted within
        // a few poll intervals.
        drop(holder);
        let mut recovered = false;
        for _ in 0..400 {
            let mut retry = match Client::connect(handle.addr()) {
                Ok(c) => c,
                Err(_) => continue,
            };
            retry.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
            match retry.range(&plain, &region, &mut segments) {
                Ok(_) => {
                    recovered = true;
                    break;
                }
                Err(ClientError::Busy | ClientError::Io(_)) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(other) => panic!("unexpected error while recovering: {other:?}"),
            }
        }
        assert!(recovered, "server never re-admitted after the holder disconnected");
    })
    .expect("serve");
}

/// Garbage on the wire is answered with a typed protocol error frame,
/// counted, and the connection is closed — the worker survives to serve
/// the next client.
#[test]
fn protocol_garbage_is_rejected_and_counted() {
    use std::io::Write;

    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();

    serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        // An unknown opcode inside a well-formed frame.
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        raw.write_all(&[1, 0, 0, 0, 0xEE]).expect("send");
        let mut buf = Vec::new();
        let (op, payload) = p::read_frame(&mut raw, &mut buf).expect("error frame");
        assert_eq!(op, p::OP_ERROR);
        match p::decode_response(op, payload).expect("decode") {
            p::Response::Error { code, .. } => assert_eq!(code, p::ERR_PROTOCOL),
            other => panic!("expected error response, got {other:?}"),
        }
        // ... and the server hangs up on us.
        assert!(p::read_frame(&mut raw, &mut buf).is_err(), "connection should be closed");

        // A length header beyond MAX_FRAME.
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        raw.write_all(&u32::MAX.to_le_bytes()).expect("send");
        let (op, _) = p::read_frame(&mut raw, &mut buf).expect("error frame");
        assert_eq!(op, p::OP_ERROR);

        assert!(
            handle.metrics().protocol_errors.load(std::sync::atomic::Ordering::Relaxed) >= 2,
            "protocol errors must be counted"
        );

        // The worker pool is unharmed: a normal client still gets served.
        let mut client = Client::connect(handle.addr()).expect("connect");
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        client.count(&plain, &Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 10.0)).expect("count");
    })
    .expect("serve");
}

/// A zero request budget cuts every non-empty range stream short with a
/// typed `TIMEOUT` frame: the prefix received is consistent with the
/// stats on the frame, the error is retryable, and empty streams (no
/// emissions, so no budget checks) still complete with `DONE`.
#[test]
fn zero_budget_cuts_streams_with_a_typed_timeout() {
    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();
    let cfg = ServerConfig { request_budget: Duration::ZERO, ..Default::default() };

    serve_with(&db, &filters, &cfg, |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        let plain = QueryDescView { tenant: 1, ..Default::default() };

        let busy_region = Aabb::cube(circuit.bounds().center(), 1.0e4);
        let expected = db.query().range(busy_region).collect().expect("local").segments.len();
        assert!(expected > 1, "test region must hold results for the budget to cut");
        match client.range(&plain, &busy_region, &mut segments) {
            Err(err @ ClientError::Timeout { .. }) => {
                assert!(err.is_retryable(), "timeouts must be retryable");
                let ClientError::Timeout { stats } = err else { unreachable!() };
                assert!(stats.results >= 1, "the segment in hand is still delivered");
                assert_eq!(
                    segments.len() as u64,
                    stats.results,
                    "the streamed prefix matches the timeout frame's stats"
                );
            }
            other => panic!("zero budget should time out, got {other:?}"),
        }

        // No results -> no budget checks -> a clean DONE.
        let empty_region = Aabb::cube(Vec3::new(500.0, 500.0, 500.0), 1.0);
        let stats = client.range(&plain, &empty_region, &mut segments).expect("empty range");
        assert_eq!(stats.results, 0);
    })
    .expect("serve");
}

/// A connection that starts a frame and then trickles it must be
/// evicted once `read_deadline` elapses — and the worker it was pinning
/// must serve the next client.
#[test]
fn slow_loris_connections_are_evicted() {
    use std::io::{Read, Write};

    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();
    let cfg = ServerConfig {
        workers: 1,
        queue: 0,
        poll: Duration::from_millis(5),
        read_deadline: Duration::from_millis(50),
        ..Default::default()
    };

    serve_with(&db, &filters, &cfg, |handle| {
        let mut loris = std::net::TcpStream::connect(handle.addr()).expect("connect");
        loris.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        // Half a frame header, then silence.
        loris.write_all(&[5, 0]).expect("trickle");
        let start = std::time::Instant::now();
        let mut buf = [0u8; 16];
        match loris.read(&mut buf) {
            Ok(0) | Err(_) => {} // hung up on us — the eviction
            Ok(n) => panic!("server answered a half-frame with {n} bytes"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "eviction took {:?}, deadline was 50ms",
            start.elapsed()
        );

        // The only worker is free again.
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        client
            .count(&plain, &Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 10.0))
            .expect("worker serves after evicting the loris");
    })
    .expect("serve");
}

/// Shutdown is a join, not a leak: serve_with must return even when a
/// client connection is still open — workers notice the stop flag at
/// the next frame boundary and close cleanly.
#[test]
fn shutdown_joins_with_a_live_idle_connection() {
    let circuit = circuit();
    let db = build_db(&circuit, IndexBackend::Flat);
    let filters = FilterRegistry::new();

    let survivor = serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        client.count(&plain, &Aabb::cube(Vec3::new(0.0, 0.0, 0.0), 10.0)).expect("count");
        handle.shutdown();
        client // keep the socket open across the shutdown path
    })
    .expect("serve_with must return with a connection still open");
    drop(survivor);
}

/// The full degradation arc over the wire: a healthy paged server
/// reports clean HEALTH; after on-disk corruption, the first strict
/// query fails and quarantines the page, subsequent strict queries get
/// the typed DEGRADED error, `allow_partial` serves the survivors with
/// the loss labeled in the stats, and HEALTH names the quarantined page.
#[test]
fn health_and_partial_results_survive_a_quarantined_page() {
    let circuit = CircuitBuilder::new(23).neurons(120).build();
    let path = std::env::temp_dir().join(format!("nsrv_health_{}.nspf", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .backend(IndexBackend::Flat)
        .page_file(&path)
        .frame_budget(1)
        .build()
        .expect("paged database builds");
    let pages = db.paged_index().expect("paged").page_count();
    assert!(pages >= 2, "need at least two pages to quarantine one, got {pages}");
    let filters = FilterRegistry::new();

    serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        let region = Aabb::cube(circuit.bounds().center(), 1.0e4);

        let health = client.health().expect("health");
        assert!(health.paged, "paged database must report paged");
        assert!(!health.degraded && health.quarantined.is_empty(), "healthy at first");
        let baseline = client.range(&plain, &region, &mut segments).expect("healthy range");
        assert!(baseline.results > 0);

        // Corrupt one page on disk behind the live server.
        let victim = (pages / 2) as u64;
        neurospatial::storage::tear_page(&path, victim).expect("tear");

        // First strict touch fails (checksum) and quarantines the page;
        // from then on strict queries get the typed DEGRADED error.
        let first = client.range(&plain, &region, &mut segments);
        match first {
            Err(ClientError::Server { code, .. }) => {
                assert!(
                    code == p::ERR_INTERNAL || code == p::ERR_DEGRADED,
                    "unexpected error code {code}"
                )
            }
            other => panic!("strict query over torn page should fail, got {other:?}"),
        }
        match client.range(&plain, &region, &mut segments) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, p::ERR_DEGRADED),
            other => panic!("quarantined page should be a typed DEGRADED error, got {other:?}"),
        }

        // Partial opt-in: the surviving pages serve, the loss is labeled.
        let partial = QueryDescView { tenant: 1, allow_partial: true, ..Default::default() };
        let stats = client.range(&partial, &region, &mut segments).expect("partial range");
        assert!(stats.pages_quarantined >= 1, "loss must be labeled");
        assert!(
            stats.results < baseline.results,
            "partial results should be missing the torn page's segments"
        );

        // HEALTH now names the quarantined page.
        let health = client.health().expect("health");
        assert!(health.paged && health.degraded);
        assert!(health.quarantined.contains(&victim), "{:?}", health.quarantined);
    })
    .expect("serve");
    let _ = std::fs::remove_file(&path);
}

/// Live ingest over the wire: INSERT/REMOVE ack after the WAL commit,
/// queries see the writes immediately, HEALTH reports the WAL state,
/// and the log survives a server restart.
#[test]
fn live_ingest_acks_serves_and_recovers_over_the_wire() {
    let circuit = circuit();
    let wal =
        std::env::temp_dir().join(format!("neurospatial-server-ingest-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let filters = FilterRegistry::new();
    let far = Aabb::cube(Vec3::new(4_000.5, 0.0, 0.0), 10.0);
    let new_seg = NeuronSegment {
        id: 5_000_000,
        neuron: 999,
        section: 0,
        index_on_section: 0,
        geom: neurospatial::geom::Segment::new(
            Vec3::new(4_000.0, 0.0, 0.0),
            Vec3::new(4_001.0, 0.0, 0.0),
            0.5,
        ),
    };
    let victim = circuit.segments()[0];

    {
        let db = NeuroDb::builder().circuit(&circuit).durable(&wal).build().expect("live db");
        serve_with(&db, &filters, &ServerConfig::default(), |handle| {
            let mut client = Client::connect(handle.addr()).expect("connect");
            let mut segments = Vec::new();
            let plain = QueryDescView { tenant: 1, ..Default::default() };

            // Writes on a frozen db would be unsupported; here they ack.
            let ack = client.insert(1, &new_seg).expect("insert acked");
            assert!(ack.lsn > 0);
            let ack2 = client.remove(1, victim.id).expect("remove acked");
            assert!(ack2.lsn > ack.lsn);

            // The insert is queryable on the same connection...
            let stats = client.range(&plain, &far, &mut segments).expect("range");
            assert_eq!(stats.results, 1);
            assert_eq!(segments[0].id, new_seg.id);
            // ...and the removal is masked out.
            let around = Aabb::cube(victim.geom.p0, 1.0);
            client.range(&plain, &around, &mut segments).expect("range");
            assert!(segments.iter().all(|s| s.id != victim.id));

            // Rejections are typed and at-most-once-safe.
            match client.insert(1, &new_seg) {
                Err(e @ ClientError::WriteRejected { .. }) => {
                    assert!(e.write_definitely_not_executed());
                }
                other => panic!("duplicate insert should be rejected, got {other:?}"),
            }

            // HEALTH carries the WAL block.
            let health = client.health().expect("health");
            let w = health.wal.expect("live server reports WAL state");
            assert!(w.last_lsn >= ack2.lsn);
            assert_eq!(w.pending_ops, 2);
            assert!(!w.recovered_torn_tail);
        })
        .expect("serve");
    }

    // Restart the server over the same WAL: the acked writes survive.
    let reopened = NeuroDb::builder().segments(vec![]).durable(&wal).build().expect("recover");
    serve_with(&reopened, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        let stats = client.range(&plain, &far, &mut segments).expect("range");
        assert_eq!(stats.results, 1, "acked insert must survive restart");
        assert_eq!(segments[0].id, new_seg.id);
        let health = client.health().expect("health");
        assert_eq!(health.wal.expect("live").replayed_ops, 2);
    })
    .expect("serve");
    let _ = std::fs::remove_file(&wal);
}

/// METRICS over the wire, one run: a scripted request sequence shows up
/// exactly in the per-server counters, and the merged snapshot carries
/// live latency histograms for queries, page I/O, and WAL commits.
#[test]
fn metrics_opcode_reports_scripted_counts_and_live_histograms() {
    let circuit = CircuitBuilder::new(29).neurons(120).build();
    let filters = FilterRegistry::new();
    let page_path = std::env::temp_dir().join(format!("nsrv_metrics_{}.nspf", std::process::id()));
    let wal = std::env::temp_dir().join(format!("nsrv_metrics_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&page_path);
    let _ = std::fs::remove_file(&wal);

    // Query/storage series live in the process-global registry, which
    // other tests in this binary also feed — assert on deltas only.
    let before = neurospatial::obs::global().snapshot();
    let count_of = |snap: &neurospatial::obs::MetricsSnapshot, name: &str| {
        snap.histogram(name).map(|h| h.count).unwrap_or(0)
    };
    let base_ranges = count_of(&before, "query_range_latency_ns");
    let base_knns = count_of(&before, "query_knn_latency_ns");
    let base_reads = count_of(&before, "storage_page_read_latency_ns");
    let base_commits = count_of(&before, "wal_commit_latency_ns");

    // Phase 1: a paged server. Every demand miss on the frame pool is a
    // timed page read.
    let db = NeuroDb::builder()
        .circuit(&circuit)
        .backend(IndexBackend::Flat)
        .page_file(&page_path)
        .frame_budget(1)
        .build()
        .expect("paged database builds");
    serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut segments = Vec::new();
        let mut neighbors = Vec::new();
        let plain = QueryDescView { tenant: 1, ..Default::default() };
        let region = Aabb::cube(circuit.bounds().center(), 1.0e4);

        for _ in 0..3 {
            client.range(&plain, &region, &mut segments).expect("range");
        }
        client.knn(&plain, Vec3::new(0.0, 0.0, 0.0), 4, &mut neighbors).expect("knn");
        client.count(&plain, &region).expect("count");

        // The per-server registry was born with this server, so its
        // counters match the scripted sequence exactly. The snapshot is
        // taken while serving the METRICS request itself — the 6th.
        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.counter("server_requests_total"), Some(6));
        assert_eq!(snap.counter("server_connections_accepted_total"), Some(1));
        assert_eq!(snap.counter("server_connections_rejected_total"), Some(0));
        assert_eq!(snap.counter("server_protocol_errors_total"), Some(0));
        assert_eq!(snap.counter("server_request_timeouts_total"), Some(0));
        let ranges = snap.histogram("server_range_latency_ns").expect("range op histogram");
        assert_eq!(ranges.count, 3, "three scripted RANGE requests");
        assert!(ranges.max >= ranges.min && ranges.sum >= ranges.max);
        assert_eq!(snap.histogram("server_knn_latency_ns").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("server_count_latency_ns").map(|h| h.count), Some(1));

        // Global series ride along in the same snapshot: the query
        // funnel and the frame pool both saw this workload.
        let q = snap.histogram("query_range_latency_ns").expect("query histogram");
        // Traversal latency is sampled (first call per thread always
        // records), so a fresh worker thread is guaranteed to add at
        // least one observation for each funnel it exercised.
        assert!(q.count > base_ranges, "the range funnel timed at least one traversal");
        assert!(q.max >= q.min && q.count >= 1 && q.sum >= q.max);
        assert!(count_of(&snap, "query_knn_latency_ns") > base_knns);
        assert!(
            count_of(&snap, "storage_page_read_latency_ns") > base_reads,
            "frame_budget(1) forces demand misses, each one a timed page read"
        );

        // The wire snapshot renders: every histogram shows up as a
        // Prometheus-style summary with quantile labels.
        let text = snap.render_text();
        assert!(text.contains("neurospatial_server_requests_total 6"));
        assert!(text.contains("neurospatial_query_range_latency_ns{quantile=\"0.99\"}"));
    })
    .expect("serve");

    // Phase 2: a durable server on a fresh registry — the previous
    // server's exact counters do not leak in, while the process-global
    // WAL histogram picks up the commit.
    let db = NeuroDb::builder().circuit(&circuit).durable(&wal).build().expect("live db");
    serve_with(&db, &filters, &ServerConfig::default(), |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let new_seg = NeuronSegment {
            id: 900_001,
            neuron: 7,
            section: 0,
            index_on_section: 0,
            geom: neurospatial::geom::Segment::new(
                Vec3::new(4_000.0, 0.0, 0.0),
                Vec3::new(4_001.0, 0.0, 0.0),
                0.5,
            ),
        };
        client.insert(1, &new_seg).expect("insert acked");

        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.counter("server_requests_total"), Some(2), "fresh per-server registry");
        assert_eq!(snap.histogram("server_insert_latency_ns").map(|h| h.count), Some(1));
        let commits = snap.histogram("wal_commit_latency_ns").expect("wal histogram");
        assert!(commits.count > base_commits, "the acked insert committed through the WAL");
    })
    .expect("serve");

    let _ = std::fs::remove_file(&page_path);
    let _ = std::fs::remove_file(&wal);
}
