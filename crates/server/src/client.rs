//! A blocking client for the wire protocol, built for serving loops:
//! one connection, reused frame buffers, results decoded into
//! caller-provided warm vectors — after the first few requests the
//! range/count/knn paths allocate nothing on either side of the socket.

use crate::protocol::{self as p, PlanWire, ProtocolError, Request, TenantTotals, WalkSummary};
use neurospatial::geom::{Aabb, Vec3};
use neurospatial::model::{NavigationPath, NeuronSegment};
use neurospatial::{Neighbor, QueryStats, WalkthroughMethod};
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request failed, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server vanishing mid-response).
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// Admission control shed this connection (`BUSY`): retry later,
    /// on a new connection.
    Busy,
    /// The server executed nothing and answered with an application
    /// error frame.
    Server { code: u16, message: String },
    /// A frame that cannot answer the request that was sent (protocol
    /// confusion; the connection should be abandoned).
    Unexpected(u8),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy => write!(f, "server busy (admission control)"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Unexpected(op) => write!(f, "unexpected response opcode 0x{op:02X}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One protocol connection. Dropping it closes the socket.
pub struct Client {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
}

impl Client {
    /// Connect and prepare frame buffers. Note a `BUSY` shed surfaces on
    /// the *first request*, not here — the TCP handshake itself is
    /// completed by the kernel before admission control runs.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            read_buf: Vec::with_capacity(4096),
            write_buf: Vec::with_capacity(4096),
        })
    }

    /// Bound how long a response read may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send whatever `write_buf` holds; a connection torn down by a
    /// `BUSY` shed is reported as [`ClientError::Busy`] rather than a
    /// raw broken pipe.
    fn send(&mut self) -> Result<(), ClientError> {
        match self.stream.write_all(&self.write_buf) {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::BrokenPipe
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                ) =>
            {
                match p::read_frame(&mut self.stream, &mut self.read_buf) {
                    Ok((p::OP_BUSY, _)) => Err(ClientError::Busy),
                    _ => Err(ClientError::Io(e)),
                }
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Range query: matching segments are appended to `out` (cleared
    /// first), the traversal's statistics returned.
    pub fn range(
        &mut self,
        desc: &p::QueryDescView<'_>,
        region: &Aabb,
        out: &mut Vec<NeuronSegment>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        self.write_buf.clear();
        p::encode_range_request(desc, region, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_SEGMENT_CHUNK => p::decode_segment_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// Count-only range query.
    pub fn count(
        &mut self,
        desc: &p::QueryDescView<'_>,
        region: &Aabb,
    ) -> Result<(u64, QueryStats), ClientError> {
        self.write_buf.clear();
        p::encode_count_request(desc, region, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_COUNT_RESULT => Ok(p::decode_count(payload)?),
            other => Err(terminal_error(other, payload)),
        }
    }

    /// K nearest neighbours appended to `out` (cleared first).
    pub fn knn(
        &mut self,
        desc: &p::QueryDescView<'_>,
        point: Vec3,
        k: u32,
        out: &mut Vec<Neighbor>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        self.write_buf.clear();
        p::encode_knn_request(desc, point, k, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_NEIGHBOR_CHUNK => p::decode_neighbor_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// ε-distance join pairs appended to `out` (cleared first).
    pub fn touching(
        &mut self,
        desc: &p::QueryDescView<'_>,
        other: &str,
        epsilon: f64,
        out: &mut Vec<(u32, u32)>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        let req = Request::Touching { desc: desc.into_owned(), other: other.to_string(), epsilon };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_PAIR_CHUNK => p::decode_pair_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// Replay a walkthrough server-side (FLAT servers only).
    pub fn walkthrough(
        &mut self,
        tenant: u32,
        method: WalkthroughMethod,
        path: &NavigationPath,
    ) -> Result<WalkSummary, ClientError> {
        let req = Request::Walkthrough { tenant, method, path: path.clone() };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_WALK_RESULT => match p::decode_response(op, payload)? {
                p::Response::Walkthrough(w) => Ok(w),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// Ask the server to plan (not run) `req`.
    pub fn explain(&mut self, req: &Request) -> Result<PlanWire, ClientError> {
        let wrapped = Request::Explain(Box::new(req.clone()));
        self.write_buf.clear();
        p::encode_request(&wrapped, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_PLAN_RESULT => match p::decode_response(op, payload)? {
                p::Response::Plan(plan) => Ok(plan),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// The server's accumulated totals for `tenant`.
    pub fn stats(&mut self, tenant: u32) -> Result<TenantTotals, ClientError> {
        let req = Request::Stats { tenant };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_STATS_RESULT => match p::decode_response(op, payload)? {
                p::Response::Stats(t) => Ok(t),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }
}

/// Interpret a non-answer frame on a response stream.
fn terminal_error(op: u8, payload: &[u8]) -> ClientError {
    match op {
        p::OP_BUSY => ClientError::Busy,
        p::OP_ERROR => match p::decode_response(op, payload) {
            Ok(p::Response::Error { code, message }) => ClientError::Server { code, message },
            Ok(_) => ClientError::Unexpected(op),
            Err(e) => ClientError::Protocol(e),
        },
        other => ClientError::Unexpected(other),
    }
}
