//! A blocking client for the wire protocol, built for serving loops:
//! one connection, reused frame buffers, results decoded into
//! caller-provided warm vectors — after the first few requests the
//! range/count/knn paths allocate nothing on either side of the socket.

use crate::protocol::{
    self as p, HealthReport, PlanWire, ProtocolError, Request, TenantTotals, WalkSummary,
};
use neurospatial::geom::{Aabb, Vec3};
use neurospatial::model::{NavigationPath, NeuronSegment};
use neurospatial::obs::MetricsSnapshot;
use neurospatial::{Neighbor, QueryStats, WalkthroughMethod};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a request failed, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server vanishing mid-response).
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// Admission control shed this connection (`BUSY`): retry later,
    /// on a new connection.
    Busy,
    /// The server's per-request budget expired mid-stream: everything
    /// received before the cut is a valid prefix, and `stats` covers
    /// exactly the work delivered. Retryable — later attempts may land
    /// on a less loaded worker or a warmer cache.
    Timeout { stats: QueryStats },
    /// The server executed nothing and answered with an application
    /// error frame.
    Server { code: u16, message: String },
    /// A write was validated and refused before anything reached the
    /// WAL (`ERR_WRITE_REJECTED`): duplicate id, unknown removal
    /// target, or non-finite geometry. Deterministic — retrying the
    /// identical write fails identically, so this is never retryable.
    WriteRejected { message: String },
    /// A frame that cannot answer the request that was sent (protocol
    /// confusion; the connection should be abandoned).
    Unexpected(u8),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy => write!(f, "server busy (admission control)"),
            ClientError::Timeout { stats } => {
                write!(f, "request budget expired after {} results", stats.results)
            }
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::WriteRejected { message } => {
                write!(f, "write rejected (nothing was logged): {message}")
            }
            ClientError::Unexpected(op) => write!(f, "unexpected response opcode 0x{op:02X}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether a fresh attempt could plausibly succeed: overload sheds
    /// (`Busy`), budget expiries (`Timeout`) and transient transport
    /// kinds retry; application errors, protocol confusion and hard I/O
    /// failures never do — retrying a permanent error only duplicates
    /// load.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Busy | ClientError::Timeout { .. } => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            ClientError::Protocol(_)
            | ClientError::Server { .. }
            | ClientError::WriteRejected { .. }
            | ClientError::Unexpected(_) => false,
        }
    }

    /// Whether the server *provably did not execute* the request this
    /// error answers — the precondition for safely resending a write.
    ///
    /// Only two shapes qualify: a `BUSY` shed (admission control ran
    /// before the request was read) and [`WriteRejected`]
    /// (validation refused the write before anything reached the WAL).
    /// Everything else — a timeout, a torn connection, a decode failure
    /// mid-response — leaves the acknowledgement status *unknown*: the
    /// server may have committed the write and the ack was lost in
    /// flight. Resending then would double-apply it.
    ///
    /// [`WriteRejected`]: ClientError::WriteRejected
    pub fn write_definitely_not_executed(&self) -> bool {
        matches!(self, ClientError::Busy | ClientError::WriteRejected { .. })
    }
}

/// Client-side retry policy: capped attempts with derandomised
/// decorrelated-jitter backoff. The backoff sequence is a pure function
/// of `(salt, attempt)`, so tests replay it without sleeping and two
/// clients with different salts don't thundering-herd in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// First backoff, in milliseconds.
    pub base_ms: u64,
    /// Ceiling every backoff is clamped to, in milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_ms: 10, cap_ms: 1_000 }
    }
}

/// The same splitmix64 finalizer the storage fault layer uses — good
/// avalanche, no dependencies, fully deterministic.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Never retry: one attempt, no backoff.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_ms: 0, cap_ms: 0 }
    }

    /// The backoff (milliseconds) to sleep *after* failed attempt
    /// `attempt` (0-based). Decorrelated jitter: each step draws
    /// uniformly from `[base, min(3 * prev, cap)]`, derandomised through
    /// `salt` so the whole schedule replays. Always within
    /// `[base_ms, cap_ms]`.
    pub fn backoff_ms(&self, salt: u64, attempt: u32) -> u64 {
        if self.cap_ms == 0 || self.cap_ms <= self.base_ms {
            return self.base_ms.min(self.cap_ms);
        }
        let mut prev = self.base_ms;
        for k in 0..=u64::from(attempt) {
            let hi = prev.saturating_mul(3).min(self.cap_ms).max(self.base_ms);
            let span = hi - self.base_ms + 1;
            let draw = mix64(salt ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93)) % span;
            prev = self.base_ms + draw;
        }
        prev
    }
}

/// Run `op` under `policy`: retryable failures ([`ClientError::Busy`],
/// [`ClientError::Timeout`], transient transport kinds) back off and
/// retry until the attempt budget is spent; permanent errors return
/// immediately. `op` receives the 0-based attempt number — use it to
/// [`Client::reconnect`] on `Busy`, whose shed closes the connection.
/// `salt` decorrelates the jitter schedule between callers (any
/// per-client value: a connection id, a PID). `sleep` receives each
/// backoff so tests can record instead of sleeping (production passes
/// `|d| std::thread::sleep(d)`).
pub fn retry_request<T>(
    policy: &RetryPolicy,
    salt: u64,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                sleep(Duration::from_millis(policy.backoff_ms(salt, attempt)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run a *write* under `policy` with **at-most-once** semantics: an
/// attempt is retried only when the failure proves the server never
/// executed it ([`ClientError::write_definitely_not_executed`] — in
/// practice a `BUSY` shed, which happens before the request is read).
///
/// This is deliberately stricter than [`retry_request`]: a read that
/// times out can be resent freely, but a write whose acknowledgement
/// status is unknown (timeout, torn connection, garbled response) must
/// **not** be resent — the commit may have landed and the ack been lost,
/// and resending would apply the write twice. Such failures return
/// immediately; the caller reconciles by querying
/// ([`Client::health`] / a read of the written id) before deciding to
/// resend.
///
/// `sleep` receives each backoff so tests can record instead of
/// sleeping, exactly as in [`retry_request`].
pub fn retry_write<T>(
    policy: &RetryPolicy,
    salt: u64,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(ClientError::Busy) if attempt + 1 < attempts => {
                sleep(Duration::from_millis(policy.backoff_ms(salt, attempt)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One protocol connection. Dropping it closes the socket.
pub struct Client {
    stream: TcpStream,
    /// The resolved peer, kept so [`reconnect`](Self::reconnect) can
    /// re-establish the connection after a `BUSY` shed closes it.
    addr: SocketAddr,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
}

impl Client {
    /// Connect and prepare frame buffers. Note a `BUSY` shed surfaces on
    /// the *first request*, not here — the TCP handshake itself is
    /// completed by the kernel before admission control runs.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            read_buf: Vec::with_capacity(4096),
            write_buf: Vec::with_capacity(4096),
        })
    }

    /// Re-establish the connection to the same resolved peer — a `BUSY`
    /// shed closes the socket server-side, so a retry loop reconnects
    /// before its next attempt. The frame buffers (and their warmth)
    /// survive; the read timeout does not.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        Ok(())
    }

    /// Bound how long a response read may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send whatever `write_buf` holds; a connection torn down by a
    /// `BUSY` shed is reported as [`ClientError::Busy`] rather than a
    /// raw broken pipe.
    fn send(&mut self) -> Result<(), ClientError> {
        match self.stream.write_all(&self.write_buf) {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::BrokenPipe
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                ) =>
            {
                match p::read_frame(&mut self.stream, &mut self.read_buf) {
                    Ok((p::OP_BUSY, _)) => Err(ClientError::Busy),
                    _ => Err(ClientError::Io(e)),
                }
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Range query: matching segments are appended to `out` (cleared
    /// first), the traversal's statistics returned.
    pub fn range(
        &mut self,
        desc: &p::QueryDescView<'_>,
        region: &Aabb,
        out: &mut Vec<NeuronSegment>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        self.write_buf.clear();
        p::encode_range_request(desc, region, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_SEGMENT_CHUNK => p::decode_segment_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// Count-only range query.
    pub fn count(
        &mut self,
        desc: &p::QueryDescView<'_>,
        region: &Aabb,
    ) -> Result<(u64, QueryStats), ClientError> {
        self.write_buf.clear();
        p::encode_count_request(desc, region, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_COUNT_RESULT => Ok(p::decode_count(payload)?),
            other => Err(terminal_error(other, payload)),
        }
    }

    /// K nearest neighbours appended to `out` (cleared first).
    pub fn knn(
        &mut self,
        desc: &p::QueryDescView<'_>,
        point: Vec3,
        k: u32,
        out: &mut Vec<Neighbor>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        self.write_buf.clear();
        p::encode_knn_request(desc, point, k, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_NEIGHBOR_CHUNK => p::decode_neighbor_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// ε-distance join pairs appended to `out` (cleared first).
    pub fn touching(
        &mut self,
        desc: &p::QueryDescView<'_>,
        other: &str,
        epsilon: f64,
        out: &mut Vec<(u32, u32)>,
    ) -> Result<QueryStats, ClientError> {
        out.clear();
        let req = Request::Touching { desc: desc.into_owned(), other: other.to_string(), epsilon };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        loop {
            let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
            match op {
                p::OP_PAIR_CHUNK => p::decode_pair_chunk_into(payload, out)?,
                p::OP_DONE => return Ok(p::decode_done(payload)?),
                other => return Err(terminal_error(other, payload)),
            }
        }
    }

    /// Replay a walkthrough server-side (FLAT servers only).
    pub fn walkthrough(
        &mut self,
        tenant: u32,
        method: WalkthroughMethod,
        path: &NavigationPath,
    ) -> Result<WalkSummary, ClientError> {
        let req = Request::Walkthrough { tenant, method, path: path.clone() };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_WALK_RESULT => match p::decode_response(op, payload)? {
                p::Response::Walkthrough(w) => Ok(w),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// Ask the server to plan (not run) `req`.
    pub fn explain(&mut self, req: &Request) -> Result<PlanWire, ClientError> {
        let wrapped = Request::Explain(Box::new(req.clone()));
        self.write_buf.clear();
        p::encode_request(&wrapped, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_PLAN_RESULT => match p::decode_response(op, payload)? {
                p::Response::Plan(plan) => Ok(plan),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// The server's accumulated totals for `tenant`.
    pub fn stats(&mut self, tenant: u32) -> Result<TenantTotals, ClientError> {
        let req = Request::Stats { tenant };
        self.write_buf.clear();
        p::encode_request(&req, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_STATS_RESULT => match p::decode_response(op, payload)? {
                p::Response::Stats(t) => Ok(t),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// Durably insert one segment (live servers only). Returns only
    /// after the server's WAL commit is fsync'd — the returned ack's
    /// `lsn` is proof the write survives any crash from here on. Any
    /// error except [`ClientError::Busy`] / [`ClientError::WriteRejected`]
    /// leaves the ack status unknown; use [`retry_write`], never
    /// [`retry_request`], to wrap this.
    pub fn insert(
        &mut self,
        tenant: u32,
        segment: &NeuronSegment,
    ) -> Result<p::WriteAckWire, ClientError> {
        self.write_buf.clear();
        p::encode_insert_request(tenant, segment, &mut self.write_buf);
        self.send()?;
        self.read_write_ack()
    }

    /// Durably remove a segment by id (live servers only). Same
    /// durability and retry contract as [`insert`](Self::insert).
    pub fn remove(&mut self, tenant: u32, id: u64) -> Result<p::WriteAckWire, ClientError> {
        self.write_buf.clear();
        p::encode_remove_request(tenant, id, &mut self.write_buf);
        self.send()?;
        self.read_write_ack()
    }

    fn read_write_ack(&mut self) -> Result<p::WriteAckWire, ClientError> {
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_WRITE_ACK => Ok(p::decode_write_ack(payload)?),
            other => Err(terminal_error(other, payload)),
        }
    }

    /// The server's serving-health snapshot: whether the database is
    /// paged, whether it is degraded, and which pages are quarantined.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        self.write_buf.clear();
        p::encode_request(&Request::Health, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_HEALTH_RESULT => match p::decode_response(op, payload)? {
                p::Response::Health(h) => Ok(h),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }

    /// The server's metrics snapshot: every counter, gauge, and latency
    /// histogram registered across the process (query pipeline, storage,
    /// prefetch) merged with the per-server serving counters.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.write_buf.clear();
        p::encode_request(&Request::Metrics, &mut self.write_buf);
        self.send()?;
        let (op, payload) = p::read_frame(&mut self.stream, &mut self.read_buf)?;
        match op {
            p::OP_METRICS_RESULT => match p::decode_response(op, payload)? {
                p::Response::Metrics(snap) => Ok(snap),
                _ => Err(ClientError::Unexpected(op)),
            },
            other => Err(terminal_error(other, payload)),
        }
    }
}

/// Interpret a non-answer frame on a response stream.
fn terminal_error(op: u8, payload: &[u8]) -> ClientError {
    match op {
        p::OP_BUSY => ClientError::Busy,
        p::OP_TIMEOUT => match p::decode_done(payload) {
            Ok(stats) => ClientError::Timeout { stats },
            Err(e) => ClientError::Protocol(e),
        },
        p::OP_ERROR => match p::decode_response(op, payload) {
            Ok(p::Response::Error { code, message }) if code == p::ERR_WRITE_REJECTED => {
                ClientError::WriteRejected { message }
            }
            Ok(p::Response::Error { code, message }) => ClientError::Server { code, message },
            Ok(_) => ClientError::Unexpected(op),
            Err(e) => ClientError::Protocol(e),
        },
        other => ClientError::Unexpected(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_err() -> ClientError {
        ClientError::Server { code: p::ERR_INTERNAL, message: "boom".into() }
    }

    #[test]
    fn retryability_classifies_by_recoverability() {
        assert!(ClientError::Busy.is_retryable());
        assert!(ClientError::Timeout { stats: QueryStats::default() }.is_retryable());
        assert!(ClientError::Io(io::ErrorKind::TimedOut.into()).is_retryable());
        assert!(ClientError::Io(io::ErrorKind::Interrupted.into()).is_retryable());
        assert!(!ClientError::Io(io::ErrorKind::BrokenPipe.into()).is_retryable());
        assert!(!server_err().is_retryable());
        assert!(!ClientError::Protocol(ProtocolError::Truncated).is_retryable());
        assert!(!ClientError::Unexpected(0xEE).is_retryable());
    }

    #[test]
    fn retry_stops_at_the_attempt_cap_without_sleeping_for_real() {
        let policy = RetryPolicy { max_attempts: 4, base_ms: 10, cap_ms: 500 };
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let res: Result<(), _> = retry_request(
            &policy,
            7,
            |d| slept.push(d),
            |attempt| {
                assert_eq!(attempt, calls);
                calls += 1;
                Err(ClientError::Busy)
            },
        );
        assert!(matches!(res, Err(ClientError::Busy)));
        assert_eq!(calls, 4, "exactly max_attempts attempts");
        assert_eq!(slept.len(), 3, "a backoff between attempts, none after the last");
        for d in &slept {
            let ms = d.as_millis() as u64;
            assert!((10..=500).contains(&ms), "backoff {ms}ms escaped [base, cap]");
        }
    }

    #[test]
    fn permanent_errors_return_immediately() {
        let policy = RetryPolicy::default();
        let mut slept = 0usize;
        let mut calls = 0u32;
        let res: Result<(), _> = retry_request(
            &policy,
            1,
            |_| slept += 1,
            |_| {
                calls += 1;
                Err(server_err())
            },
        );
        assert!(matches!(res, Err(ClientError::Server { .. })));
        assert_eq!(calls, 1, "permanent errors must not burn the attempt budget");
        assert_eq!(slept, 0);
    }

    #[test]
    fn success_after_transient_failures_stops_the_loop() {
        let policy = RetryPolicy { max_attempts: 5, base_ms: 1, cap_ms: 50 };
        let mut calls = 0u32;
        let res = retry_request(
            &policy,
            3,
            |_| {},
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err(ClientError::Timeout { stats: QueryStats::default() })
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(res.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_salt_decorrelated() {
        let policy = RetryPolicy { max_attempts: 8, base_ms: 20, cap_ms: 800 };
        for salt in [0u64, 1, 42, u64::MAX] {
            for attempt in 0..8 {
                let a = policy.backoff_ms(salt, attempt);
                let b = policy.backoff_ms(salt, attempt);
                assert_eq!(a, b, "same inputs, same backoff");
                assert!((20..=800).contains(&a), "backoff {a}ms outside bounds");
            }
        }
        // Different salts must not produce identical schedules.
        let schedule = |salt| (0..8).map(|a| policy.backoff_ms(salt, a)).collect::<Vec<_>>();
        assert_ne!(schedule(1), schedule(2), "salts should decorrelate jitter");
    }

    #[test]
    fn none_policy_is_a_single_attempt() {
        let mut calls = 0u32;
        let res: Result<(), _> = retry_request(
            &RetryPolicy::none(),
            0,
            |_| {},
            |_| {
                calls += 1;
                Err(ClientError::Busy)
            },
        );
        assert!(matches!(res, Err(ClientError::Busy)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn write_rejected_is_never_retryable() {
        let e = ClientError::WriteRejected { message: "duplicate id".into() };
        assert!(!e.is_retryable());
        assert!(e.write_definitely_not_executed(), "rejection happens before the WAL");
        assert!(ClientError::Busy.write_definitely_not_executed());
        // Ack-unknown shapes: the commit may have landed.
        assert!(
            !ClientError::Timeout { stats: QueryStats::default() }.write_definitely_not_executed()
        );
        assert!(!ClientError::Io(io::ErrorKind::TimedOut.into()).write_definitely_not_executed());
        assert!(!ClientError::Io(io::ErrorKind::BrokenPipe.into()).write_definitely_not_executed());
    }

    #[test]
    fn retry_write_retries_busy_only() {
        let policy = RetryPolicy { max_attempts: 5, base_ms: 10, cap_ms: 500 };
        // Busy sheds (request never read) retry until success.
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let res = retry_write(
            &policy,
            11,
            |d| slept.push(d),
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err(ClientError::Busy)
                } else {
                    Ok(p::WriteAckWire { lsn: 7, pending: 1 })
                }
            },
        );
        assert_eq!(res.unwrap().lsn, 7);
        assert_eq!(calls, 3);
        assert_eq!(slept.len(), 2, "one backoff per Busy shed");
        for d in &slept {
            let ms = d.as_millis() as u64;
            assert!((10..=500).contains(&ms), "backoff {ms}ms escaped [base, cap]");
        }
    }

    #[test]
    fn retry_write_never_resends_on_ack_unknown_failures() {
        let policy = RetryPolicy { max_attempts: 5, base_ms: 1, cap_ms: 50 };
        // A timeout is retryable for reads — but for a write the ack
        // status is unknown, so exactly one attempt is made.
        for err in [
            ClientError::Timeout { stats: QueryStats::default() },
            ClientError::Io(io::ErrorKind::TimedOut.into()),
            ClientError::Io(io::ErrorKind::BrokenPipe.into()),
            ClientError::Protocol(ProtocolError::Truncated),
            ClientError::WriteRejected { message: "dup".into() },
        ] {
            let mut calls = 0u32;
            let mut slept = 0usize;
            let mut err = Some(err);
            let res: Result<p::WriteAckWire, _> = retry_write(
                &policy,
                2,
                |_| slept += 1,
                |_| {
                    calls += 1;
                    Err(err.take().expect("called once"))
                },
            );
            assert!(res.is_err());
            assert_eq!(calls, 1, "ack-unknown failure must not be resent");
            assert_eq!(slept, 0);
        }
    }

    #[test]
    fn degenerate_policies_do_not_panic_or_escape_bounds() {
        let zero = RetryPolicy { max_attempts: 0, base_ms: 0, cap_ms: 0 };
        assert_eq!(zero.backoff_ms(9, 0), 0);
        let mut calls = 0u32;
        let _: Result<(), _> = retry_request(
            &zero,
            0,
            |_| {},
            |_| {
                calls += 1;
                Err(ClientError::Busy)
            },
        );
        assert_eq!(calls, 1, "max_attempts 0 still makes one attempt");

        let flat = RetryPolicy { max_attempts: 3, base_ms: 100, cap_ms: 100 };
        assert_eq!(flat.backoff_ms(5, 2), 100, "cap == base pins the backoff");
    }
}
