//! The `neurospatial-server` binary: generate a synthetic circuit (the
//! stand-in for the paper's Blue Brain datasets), index it, and serve
//! the wire protocol until killed.
//!
//! ```text
//! neurospatial-server [--addr=127.0.0.1:7878] [--backend=flat]
//!                     [--neurons=40] [--seed=7]
//!                     [--workers=4] [--queue=16]
//! ```
//!
//! Two populations are declared (`axons` = even neuron ids,
//! `dendrites` = odd), and two predicates are registered for
//! `FLAG_FILTER` requests: id 1 keeps even neuron ids, id 2 keeps odd.

use neurospatial::model::{CircuitBuilder, NeuronSegment};
use neurospatial::NeuroDb;
use neurospatial_server::{serve_with, FilterRegistry, ServerConfig};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn parse_value<T: std::str::FromStr>(arg: &str, prefix: &str) -> T {
    arg.strip_prefix(prefix).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("invalid value in '{arg}'");
        std::process::exit(2);
    })
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut backend = "flat".to_string();
    let mut neurons = 40u32;
    let mut seed = 7u64;
    let mut cfg = ServerConfig::default();
    for arg in std::env::args().skip(1) {
        if arg.starts_with("--addr=") {
            addr = parse_value(&arg, "--addr=");
        } else if arg.starts_with("--backend=") {
            backend = parse_value(&arg, "--backend=");
        } else if arg.starts_with("--neurons=") {
            neurons = parse_value(&arg, "--neurons=");
        } else if arg.starts_with("--seed=") {
            seed = parse_value(&arg, "--seed=");
        } else if arg.starts_with("--workers=") {
            cfg.workers = parse_value(&arg, "--workers=");
        } else if arg.starts_with("--queue=") {
            cfg.queue = parse_value(&arg, "--queue=");
        } else {
            eprintln!(
                "unknown argument '{arg}'\nusage: neurospatial-server [--addr=HOST:PORT] \
                 [--backend=NAME] [--neurons=N] [--seed=N] [--workers=N] [--queue=N]"
            );
            std::process::exit(2);
        }
    }
    cfg.addr = addr;

    let circuit = CircuitBuilder::new(seed).neurons(neurons).build();
    let db = match NeuroDb::builder()
        .circuit(&circuit)
        .backend_named(&backend)
        .split_populations("axons", "dendrites", |s| s.neuron.is_multiple_of(2))
        .build()
    {
        Ok(db) => db,
        Err(err) => {
            eprintln!("failed to build database: {err}");
            std::process::exit(2);
        }
    };

    let even = |s: &NeuronSegment| s.neuron.is_multiple_of(2);
    let odd = |s: &NeuronSegment| s.neuron % 2 == 1;
    let mut filters = FilterRegistry::new();
    filters.register(1, &even).register(2, &odd);

    let served = serve_with(&db, &filters, &cfg, |handle| {
        println!(
            "neurospatial-server listening on {} ({} segments, backend {backend}, {} workers, \
             queue {})",
            handle.addr(),
            circuit.segments().len(),
            cfg.workers,
            cfg.queue
        );
        loop {
            std::thread::sleep(Duration::from_secs(30));
            let m = handle.metrics();
            println!(
                "accepted={} rejected={} requests={} protocol_errors={}",
                m.accepted.load(Ordering::Relaxed),
                m.rejected.load(Ordering::Relaxed),
                m.requests.load(Ordering::Relaxed),
                m.protocol_errors.load(Ordering::Relaxed)
            );
        }
    });
    if let Err(err) = served {
        eprintln!("failed to serve: {err}");
        std::process::exit(1);
    }
}
