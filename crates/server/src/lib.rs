//! # neurospatial-server
//!
//! The network front end for [`neurospatial`]: a TCP query service
//! whose wire protocol mirrors the [`neurospatial::Query`] builder —
//! range / knn / touching / along-path requests with population,
//! filter-id and limit pushdown, count-only aggregation, `EXPLAIN`
//! plans and per-tenant `STATS` — over compact length-prefixed binary
//! frames (see [`protocol`] for the layout).
//!
//! The serving model ([`server`]) is an acceptor plus a fixed pool of
//! worker threads, each holding one connection and one persistent
//! [`neurospatial::QuerySession`]: steady-state range/count/knn
//! requests are served with **zero heap allocations** end to end.
//! Overload is handled by admission control — a bounded hand-off queue
//! with `BUSY` fast-reject — so shedding costs microseconds instead of
//! building latency cliffs. [`client`] is the matching blocking client.
//!
//! ```
//! use neurospatial::prelude::*;
//! use neurospatial_server::{serve_with, Client, FilterRegistry, ServerConfig};
//! use neurospatial_server::protocol::QueryDescView;
//!
//! let circuit = CircuitBuilder::new(11).neurons(8).build();
//! let db = NeuroDb::builder().circuit(&circuit).build().expect("valid");
//! let filters = FilterRegistry::new();
//! let region = Aabb::cube(circuit.bounds().center(), 30.0);
//!
//! let served = serve_with(&db, &filters, &ServerConfig::default(), |handle| {
//!     let mut client = Client::connect(handle.addr()).expect("connect");
//!     let mut out = Vec::new();
//!     let stats =
//!         client.range(&QueryDescView::default(), &region, &mut out).expect("range");
//!     assert_eq!(out.len() as u64, stats.results);
//!     out.len()
//! })
//! .expect("bind");
//! assert_eq!(served, db.query().range(region).collect().expect("ok").segments.len());
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{retry_request, retry_write, Client, ClientError, RetryPolicy};
pub use protocol::{
    HealthReport, PlanWire, ProtocolError, QueryDesc, Request, Response, TenantTotals, WalWire,
    WalkSummary, WriteAckWire,
};
pub use server::{
    serve_with, FilterRegistry, ServerConfig, ServerHandle, ServerMetrics, ServerPredicate,
};
