//! The wire protocol: compact little-endian binary frames mirroring the
//! [`neurospatial::Query`] builder.
//!
//! Every frame is `[u32 len][u8 opcode][payload]` where `len` counts the
//! opcode byte plus the payload (so an empty-payload frame has
//! `len == 1`). Requests carry a [`QueryDesc`] envelope — tenant id plus
//! the builder's pushdown composition (population / filter-id / limit as
//! presence-flagged optionals) — followed by the operation's operands.
//! Responses stream: a range query answers with zero or more
//! segment-chunk frames followed by one `DONE` frame carrying the
//! traversal's [`QueryStats`]; aggregates and errors are single frames.
//!
//! Two decoding surfaces share one layout:
//!
//! * [`RequestView`] borrows variable-length fields (population names)
//!   straight out of the read buffer — the server's steady-state path,
//!   which must not allocate per request;
//! * [`Request`] / [`Response`] own their fields — the round-trip form
//!   the property tests and the in-process client exercise.
//!
//! Every decoder is total: malformed input returns a typed
//! [`ProtocolError`], never a panic, and counts are validated against
//! the bytes actually present before any buffer is sized from them.

use neurospatial::geom::{Aabb, Segment, Vec3};
use neurospatial::model::{NavigationPath, NeuronSegment};
use neurospatial::obs::MetricsSnapshot;
use neurospatial::{Neighbor, QueryStats, WalkthroughMethod};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's `len` header: a corrupt or hostile length
/// prefix must not size a buffer. 16 MiB holds ~220k segment results per
/// chunk — far above [`SEGMENT_CHUNK`]-sized frames.
pub const MAX_FRAME: usize = 1 << 24;

/// Segments per streamed response chunk (~39 KiB frames).
pub const SEGMENT_CHUNK: usize = 512;

// Request opcodes.
pub const OP_RANGE: u8 = 0x01;
pub const OP_COUNT: u8 = 0x02;
pub const OP_KNN: u8 = 0x03;
pub const OP_TOUCHING: u8 = 0x04;
pub const OP_WALKTHROUGH: u8 = 0x05;
pub const OP_EXPLAIN: u8 = 0x06;
pub const OP_STATS: u8 = 0x07;
pub const OP_HEALTH: u8 = 0x08;
/// Durable insert (live servers only): `u32 tenant` + one 76-byte
/// segment; answered with one `WRITE_ACK` frame after the WAL commit.
pub const OP_INSERT: u8 = 0x09;
/// Durable remove (live servers only): `u32 tenant` + `u64 id`;
/// answered with one `WRITE_ACK` frame after the WAL commit.
pub const OP_REMOVE: u8 = 0x0A;
/// Observability scrape: no payload; answered with one
/// `METRICS_RESULT` frame carrying a versioned
/// [`MetricsSnapshot`] (process-wide registry merged with the server's
/// per-listener registry).
pub const OP_METRICS: u8 = 0x0B;

// Response opcodes.
pub const OP_SEGMENT_CHUNK: u8 = 0x81;
pub const OP_NEIGHBOR_CHUNK: u8 = 0x82;
pub const OP_PAIR_CHUNK: u8 = 0x83;
pub const OP_DONE: u8 = 0x84;
pub const OP_COUNT_RESULT: u8 = 0x85;
pub const OP_PLAN_RESULT: u8 = 0x86;
pub const OP_STATS_RESULT: u8 = 0x87;
pub const OP_ERROR: u8 = 0x88;
pub const OP_BUSY: u8 = 0x89;
pub const OP_WALK_RESULT: u8 = 0x8A;
pub const OP_HEALTH_RESULT: u8 = 0x8B;
/// A stream cut short by the server's per-request time budget: takes the
/// place of `DONE`, carrying the statistics of the work actually done.
/// Everything streamed before it is valid but incomplete.
pub const OP_TIMEOUT: u8 = 0x8C;
/// Durability acknowledgement for `INSERT` / `REMOVE`: sent only after
/// the write's commit record is fsync'd to the WAL. Carries the commit
/// LSN and the delta ops still pending a re-freeze.
pub const OP_WRITE_ACK: u8 = 0x8D;
/// Answer to `METRICS`: the payload is exactly the versioned binary
/// encoding produced by [`MetricsSnapshot::encode_into`]
/// (self-describing, version-checked on decode).
pub const OP_METRICS_RESULT: u8 = 0x8E;

// QueryDesc presence flags.
pub const FLAG_POPULATION: u8 = 1;
pub const FLAG_FILTER: u8 = 2;
pub const FLAG_LIMIT: u8 = 4;
/// Accept partial results from a degraded (quarantined-page) database;
/// a pure flag — no payload bytes follow it.
pub const FLAG_PARTIAL: u8 = 8;

// HealthReport flag bits.
pub const HEALTH_PAGED: u8 = 1;
pub const HEALTH_DEGRADED: u8 = 2;
/// The served database is live (WAL-backed): a [`WalWire`] block
/// follows the quarantine list in the `HEALTH_RESULT` payload.
pub const HEALTH_WAL: u8 = 4;
/// The last recovery truncated a torn WAL tail (uncommitted bytes from
/// a crash mid-append). Informational: the acknowledged prefix is
/// intact. Only valid alongside [`HEALTH_WAL`].
pub const HEALTH_WAL_TORN: u8 = 8;

// Application error codes carried by `OP_ERROR` frames.
pub const ERR_UNKNOWN_POPULATION: u16 = 1;
pub const ERR_UNKNOWN_FILTER: u16 = 2;
pub const ERR_PROTOCOL: u16 = 3;
pub const ERR_UNSUPPORTED: u16 = 4;
pub const ERR_INTERNAL: u16 = 5;
/// The query needed quarantined pages and did not set `FLAG_PARTIAL`.
pub const ERR_DEGRADED: u16 = 6;
/// A write was validated and refused before anything reached the WAL
/// (duplicate id, unknown removal target, non-finite geometry). Nothing
/// was logged; retrying the same write will fail the same way.
pub const ERR_WRITE_REJECTED: u16 = 7;

/// Why a frame failed to decode. Decoders return these — they never
/// panic, whatever the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before a fixed-width field or declared count
    /// was satisfied.
    Truncated,
    /// The frame's opcode byte is not one this protocol defines (or not
    /// one valid in this position).
    UnknownOpcode(u8),
    /// The `len` header exceeds [`MAX_FRAME`] (or is zero, which cannot
    /// even hold the opcode byte).
    FrameTooLarge(u64),
    /// Structurally invalid payload: bad flag bits, non-UTF-8 name,
    /// out-of-range enum index, count disagreeing with the bytes
    /// present, or trailing garbage after a complete body.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame payload truncated"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02X}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME}")
            }
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The request envelope: who is asking (tenant, for the per-tenant
/// accounting behind `STATS`) and the pushdown composition every
/// operation shares. Owned form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryDesc {
    /// Accounting key; `STATS` reports per-tenant totals.
    pub tenant: u32,
    /// Restrict to one named population (`FLAG_POPULATION`).
    pub population: Option<String>,
    /// Server-registered predicate id (`FLAG_FILTER`) — predicates
    /// cannot cross the wire, so clients name them.
    pub filter_id: Option<u32>,
    /// Stop the traversal after this many results (`FLAG_LIMIT`).
    pub limit: Option<u32>,
    /// Accept labeled partial results from a degraded paged database
    /// (`FLAG_PARTIAL`); the loss is reported in
    /// `QueryStats::pages_quarantined` on the `DONE` frame.
    pub allow_partial: bool,
}

/// [`QueryDesc`] with the population name borrowed from the read buffer
/// — the server's per-request decode allocates nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryDescView<'a> {
    pub tenant: u32,
    pub population: Option<&'a str>,
    pub filter_id: Option<u32>,
    pub limit: Option<u32>,
    pub allow_partial: bool,
}

impl QueryDescView<'_> {
    /// The owning form. (Named to dodge the blanket
    /// [`ToOwned::to_owned`], which would clone the view instead.)
    pub fn into_owned(self) -> QueryDesc {
        QueryDesc {
            tenant: self.tenant,
            population: self.population.map(str::to_string),
            filter_id: self.filter_id,
            limit: self.limit,
            allow_partial: self.allow_partial,
        }
    }
}

impl QueryDesc {
    pub fn tenant(tenant: u32) -> Self {
        QueryDesc { tenant, ..QueryDesc::default() }
    }

    fn view(&self) -> QueryDescView<'_> {
        QueryDescView {
            tenant: self.tenant,
            population: self.population.as_deref(),
            filter_id: self.filter_id,
            limit: self.limit,
            allow_partial: self.allow_partial,
        }
    }
}

/// A decoded request, owned — what the client encodes and the property
/// tests round-trip.
#[derive(Debug, Clone)]
pub enum Request {
    /// Range query: stream matching segments, then `DONE`.
    Range { desc: QueryDesc, region: Aabb },
    /// Count-only range query: one `COUNT_RESULT` frame, nothing
    /// materialized server-side (the [`neurospatial::RangeQuery::count`]
    /// terminal).
    Count { desc: QueryDesc, region: Aabb },
    /// K nearest neighbours: neighbour chunks, then `DONE`.
    Knn { desc: QueryDesc, p: Vec3, k: u32 },
    /// ε-distance join against population `other`: pair chunks, then
    /// `DONE`.
    Touching { desc: QueryDesc, other: String, epsilon: f64 },
    /// Walkthrough replay with simulated paged I/O (FLAT servers only):
    /// one `WALK_RESULT` frame.
    Walkthrough { tenant: u32, method: WalkthroughMethod, path: NavigationPath },
    /// Plan the wrapped request without executing it: one `PLAN_RESULT`
    /// frame. Not nestable; cannot wrap `Stats`.
    Explain(Box<Request>),
    /// Per-tenant accounting snapshot: one `STATS_RESULT` frame.
    Stats { tenant: u32 },
    /// Serving-health probe (quarantine / degraded state): one
    /// `HEALTH_RESULT` frame. No payload.
    Health,
    /// Durable insert (live servers only): one `WRITE_ACK` frame after
    /// the WAL commit, or an `ERROR` frame (nothing was logged).
    Insert { tenant: u32, segment: NeuronSegment },
    /// Durable remove by segment id (live servers only).
    Remove { tenant: u32, id: u64 },
    /// Observability scrape: one `METRICS_RESULT` frame with the live
    /// metrics snapshot. No payload.
    Metrics,
}

/// A decoded request borrowing its variable-length fields from the read
/// buffer — the server's allocation-free decode for the hot operations.
/// (`Walkthrough` owns its path: replays are not the steady-state path
/// and the path's vectors cannot be borrowed.)
#[derive(Debug, Clone)]
pub enum RequestView<'a> {
    Range { desc: QueryDescView<'a>, region: Aabb },
    Count { desc: QueryDescView<'a>, region: Aabb },
    Knn { desc: QueryDescView<'a>, p: Vec3, k: u32 },
    Touching { desc: QueryDescView<'a>, other: &'a str, epsilon: f64 },
    Walkthrough { tenant: u32, method: WalkthroughMethod, path: NavigationPath },
    Explain(Box<RequestView<'a>>),
    Stats { tenant: u32 },
    Health,
    Insert { tenant: u32, segment: NeuronSegment },
    Remove { tenant: u32, id: u64 },
    Metrics,
}

impl RequestView<'_> {
    /// The owning form (named to dodge the blanket [`ToOwned`]).
    pub fn into_owned(self) -> Request {
        match self {
            RequestView::Range { desc, region } => {
                Request::Range { desc: desc.into_owned(), region }
            }
            RequestView::Count { desc, region } => {
                Request::Count { desc: desc.into_owned(), region }
            }
            RequestView::Knn { desc, p, k } => Request::Knn { desc: desc.into_owned(), p, k },
            RequestView::Touching { desc, other, epsilon } => {
                Request::Touching { desc: desc.into_owned(), other: other.to_string(), epsilon }
            }
            RequestView::Walkthrough { tenant, method, path } => {
                Request::Walkthrough { tenant, method, path }
            }
            RequestView::Explain(inner) => Request::Explain(Box::new((*inner).into_owned())),
            RequestView::Stats { tenant } => Request::Stats { tenant },
            RequestView::Health => Request::Health,
            RequestView::Insert { tenant, segment } => Request::Insert { tenant, segment },
            RequestView::Remove { tenant, id } => Request::Remove { tenant, id },
            RequestView::Metrics => Request::Metrics,
        }
    }

    /// The tenant this request bills to (`HEALTH` carries none: 0).
    pub fn tenant(&self) -> u32 {
        match self {
            RequestView::Range { desc, .. }
            | RequestView::Count { desc, .. }
            | RequestView::Knn { desc, .. }
            | RequestView::Touching { desc, .. } => desc.tenant,
            RequestView::Walkthrough { tenant, .. }
            | RequestView::Stats { tenant }
            | RequestView::Insert { tenant, .. }
            | RequestView::Remove { tenant, .. } => *tenant,
            RequestView::Explain(inner) => inner.tenant(),
            RequestView::Health | RequestView::Metrics => 0,
        }
    }
}

/// The [`neurospatial::Plan`] fields in wire form (owned strings instead
/// of `&'static str` / backend enums, so plans decode without the
/// catalogue).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanWire {
    pub operation: String,
    pub backend: String,
    pub shards_total: u32,
    pub shards_probed: u32,
    pub estimated_reads: u64,
    pub pushdown_filter: bool,
    pub pushdown_limit: Option<u32>,
    pub population: Option<String>,
}

/// One tenant's accumulated serving totals, as reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantTotals {
    pub tenant: u32,
    /// Requests served (accepted and executed, successfully or not).
    pub queries: u64,
    /// Field-wise sums of every served query's [`QueryStats`].
    pub results: u64,
    pub nodes_read: u64,
    pub objects_tested: u64,
    pub reseeds: u64,
}

/// The server's serving-health snapshot, as reported by `HEALTH`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Whether the served database is paged (quarantine state only
    /// exists for paged backends).
    pub paged: bool,
    /// At least one page has been quarantined: strict queries touching
    /// those pages fail with [`ERR_DEGRADED`], everything else serves
    /// normally.
    pub degraded: bool,
    /// The quarantined page indices, ascending.
    pub quarantined: Vec<u64>,
    /// Write-ahead-log state; `Some` only for live (WAL-backed) servers
    /// (`HEALTH_WAL` flag on the wire).
    pub wal: Option<WalWire>,
}

/// A live server's WAL / recovery state in wire form — the
/// `neurospatial` crate's `WalHealth` without the epoch-internal fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalWire {
    /// LSN of the most recent commit or checkpoint record.
    pub last_lsn: u64,
    /// Current log size in bytes (drops at each checkpoint).
    pub wal_bytes: u64,
    /// Delta ops applied since the last re-freeze.
    pub pending_ops: u64,
    /// Snapshot-swap generation (0 = the recovery/boot build).
    pub epoch: u64,
    /// Ops replayed from the log tail when the database was opened.
    pub replayed_ops: u64,
    /// Checkpoints written over the database's lifetime.
    pub checkpoints: u64,
    /// Whether recovery truncated a torn (uncommitted) tail.
    pub recovered_torn_tail: bool,
}

/// The payload of a `WRITE_ACK` frame: proof of durability for one
/// acknowledged write batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteAckWire {
    /// LSN of the commit record covering the write; the write survives
    /// any crash after this frame is received.
    pub lsn: u64,
    /// Delta ops pending a background re-freeze after this write.
    pub pending: u64,
}

/// A walkthrough replay's summary statistics in wire form.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalkSummary {
    pub steps: u32,
    pub total_stall_ms: f64,
    pub demand_misses: u64,
    pub demand_hits: u64,
    pub prefetched: u64,
    pub useful_prefetched: u64,
}

/// A decoded response frame, owned — the client/test surface. The
/// server encodes chunks directly from its reused buffers via the
/// `encode_*` free functions instead of building these.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A batch of result segments (one of several, order preserved).
    Segments(Vec<NeuronSegment>),
    /// A batch of KNN neighbours.
    Neighbors(Vec<Neighbor>),
    /// A batch of join index pairs.
    Pairs(Vec<(u32, u32)>),
    /// End of stream: the traversal's statistics.
    Done(QueryStats),
    /// A count-only answer.
    Count {
        count: u64,
        stats: QueryStats,
    },
    Plan(PlanWire),
    Stats(TenantTotals),
    /// Application-level failure (unknown population/filter, unsupported
    /// operation, protocol violation). The connection stays usable.
    Error {
        code: u16,
        message: String,
    },
    /// Admission control shed this connection before any request was
    /// read; the server closes the socket after sending it.
    Busy,
    Walkthrough(WalkSummary),
    /// Serving-health snapshot (quarantine / degraded state).
    Health(HealthReport),
    /// The per-request time budget expired mid-stream: everything
    /// already streamed is valid but the result set is incomplete. Takes
    /// the place of `Done`, carrying the work actually performed.
    Timeout(QueryStats),
    /// Durability acknowledgement: the write's commit record is on
    /// stable storage.
    WriteAck(WriteAckWire),
    /// The live metrics snapshot answering a `METRICS` scrape.
    Metrics(MetricsSnapshot),
}

// ---------------------------------------------------------------------
// Primitive cursor
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over one frame payload.
struct Rd<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, off: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.off
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn vec3(&mut self) -> Result<Vec3, ProtocolError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    fn aabb(&mut self) -> Result<Aabb, ProtocolError> {
        Ok(Aabb { lo: self.vec3()?, hi: self.vec3()? })
    }

    fn str(&mut self) -> Result<&'a str, ProtocolError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| ProtocolError::Malformed("non-UTF-8 name"))
    }

    /// A `u32` element count, validated against the bytes actually
    /// remaining *before* anything is sized from it.
    fn count(&mut self, elem_size: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.checked_mul(elem_size).is_none_or(|need| need > self.remaining()) {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    /// Declare the body complete: trailing bytes are an error.
    fn finish(&self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes after frame body"));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
    put_f64(out, v.x);
    put_f64(out, v.y);
    put_f64(out, v.z);
}

fn put_aabb(out: &mut Vec<u8>, a: &Aabb) {
    put_vec3(out, a.lo);
    put_vec3(out, a.hi);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "name too long for wire");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Begin a frame in `out`: reserve the length header, write the opcode,
/// and return the offset to patch with [`end_frame`].
fn begin_frame(out: &mut Vec<u8>, opcode: u8) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, opcode]);
    at
}

/// Patch the length header of the frame begun at `at`.
fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Read one complete frame into `buf` (reused across calls — the steady
/// state allocates nothing once the buffer has grown). Returns the
/// opcode and the payload slice. Corrupt length headers surface as
/// [`io::ErrorKind::InvalidData`] carrying the [`ProtocolError`].
pub fn read_frame<'a>(r: &mut impl Read, buf: &'a mut Vec<u8>) -> io::Result<(u8, &'a [u8])> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge(len as u64),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok((buf[0], &buf[1..]))
}

/// Write bytes previously produced by the `encode_*` functions.
pub fn write_all(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

// ---------------------------------------------------------------------
// Request encoding / decoding
// ---------------------------------------------------------------------

fn put_desc(out: &mut Vec<u8>, desc: &QueryDescView<'_>) {
    put_u32(out, desc.tenant);
    let mut flags = 0u8;
    if desc.population.is_some() {
        flags |= FLAG_POPULATION;
    }
    if desc.filter_id.is_some() {
        flags |= FLAG_FILTER;
    }
    if desc.limit.is_some() {
        flags |= FLAG_LIMIT;
    }
    if desc.allow_partial {
        flags |= FLAG_PARTIAL;
    }
    out.push(flags);
    if let Some(name) = desc.population {
        put_str(out, name);
    }
    if let Some(id) = desc.filter_id {
        put_u32(out, id);
    }
    if let Some(limit) = desc.limit {
        put_u32(out, limit);
    }
}

fn read_desc<'a>(rd: &mut Rd<'a>) -> Result<QueryDescView<'a>, ProtocolError> {
    let tenant = rd.u32()?;
    let flags = rd.u8()?;
    if flags & !(FLAG_POPULATION | FLAG_FILTER | FLAG_LIMIT | FLAG_PARTIAL) != 0 {
        return Err(ProtocolError::Malformed("unknown QueryDesc flag bits"));
    }
    let population = if flags & FLAG_POPULATION != 0 { Some(rd.str()?) } else { None };
    let filter_id = if flags & FLAG_FILTER != 0 { Some(rd.u32()?) } else { None };
    let limit = if flags & FLAG_LIMIT != 0 { Some(rd.u32()?) } else { None };
    let allow_partial = flags & FLAG_PARTIAL != 0;
    Ok(QueryDescView { tenant, population, filter_id, limit, allow_partial })
}

/// Append a range-request frame without an owned [`Request`] — the
/// client's allocation-free send path.
pub fn encode_range_request(desc: &QueryDescView<'_>, region: &Aabb, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_RANGE);
    put_desc(out, desc);
    put_aabb(out, region);
    end_frame(out, at);
}

/// Append a count-request frame (allocation-free form).
pub fn encode_count_request(desc: &QueryDescView<'_>, region: &Aabb, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_COUNT);
    put_desc(out, desc);
    put_aabb(out, region);
    end_frame(out, at);
}

/// Append a KNN-request frame (allocation-free form).
pub fn encode_knn_request(desc: &QueryDescView<'_>, p: Vec3, k: u32, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_KNN);
    put_desc(out, desc);
    put_vec3(out, p);
    put_u32(out, k);
    end_frame(out, at);
}

/// Append a durable-insert request frame (allocation-free form).
pub fn encode_insert_request(tenant: u32, segment: &NeuronSegment, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_INSERT);
    put_u32(out, tenant);
    put_segment(out, segment);
    end_frame(out, at);
}

/// Append a durable-remove request frame (allocation-free form).
pub fn encode_remove_request(tenant: u32, id: u64, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_REMOVE);
    put_u32(out, tenant);
    put_u64(out, id);
    end_frame(out, at);
}

/// Append a metrics-scrape request frame (no payload).
pub fn encode_metrics_request(out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_METRICS);
    end_frame(out, at);
}

fn method_index(method: WalkthroughMethod) -> u8 {
    WalkthroughMethod::ALL.iter().position(|m| *m == method).expect("every method is in ALL") as u8
}

/// Append `req` to `out` as one complete frame (header included).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    fn body(req: &Request, out: &mut Vec<u8>) {
        match req {
            Request::Range { desc, region } | Request::Count { desc, region } => {
                put_desc(out, &desc.view());
                put_aabb(out, region);
            }
            Request::Knn { desc, p, k } => {
                put_desc(out, &desc.view());
                put_vec3(out, *p);
                put_u32(out, *k);
            }
            Request::Touching { desc, other, epsilon } => {
                put_desc(out, &desc.view());
                put_str(out, other);
                put_f64(out, *epsilon);
            }
            Request::Walkthrough { tenant, method, path } => {
                put_u32(out, *tenant);
                out.push(method_index(*method));
                put_u32(out, path.neuron);
                put_u32(out, path.sections.len() as u32);
                for s in &path.sections {
                    put_u32(out, *s);
                }
                put_u32(out, path.waypoints.len() as u32);
                for w in &path.waypoints {
                    put_vec3(out, *w);
                }
                put_u32(out, path.queries.len() as u32);
                for q in &path.queries {
                    put_aabb(out, q);
                }
                put_f64(out, path.view_radius);
            }
            Request::Stats { tenant } => put_u32(out, *tenant),
            Request::Health | Request::Metrics => {}
            Request::Insert { tenant, segment } => {
                put_u32(out, *tenant);
                put_segment(out, segment);
            }
            Request::Remove { tenant, id } => {
                put_u32(out, *tenant);
                put_u64(out, *id);
            }
            Request::Explain(inner) => {
                out.push(request_opcode(inner));
                body(inner, out);
            }
        }
    }
    let at = begin_frame(out, request_opcode(req));
    body(req, out);
    end_frame(out, at);
}

/// The opcode an owned request encodes under.
pub fn request_opcode(req: &Request) -> u8 {
    match req {
        Request::Range { .. } => OP_RANGE,
        Request::Count { .. } => OP_COUNT,
        Request::Knn { .. } => OP_KNN,
        Request::Touching { .. } => OP_TOUCHING,
        Request::Walkthrough { .. } => OP_WALKTHROUGH,
        Request::Explain(_) => OP_EXPLAIN,
        Request::Stats { .. } => OP_STATS,
        Request::Health => OP_HEALTH,
        Request::Insert { .. } => OP_INSERT,
        Request::Remove { .. } => OP_REMOVE,
        Request::Metrics => OP_METRICS,
    }
}

/// Decode a request payload into the borrowing view. `explainable`
/// gates recursion: an `EXPLAIN` body may hold any plannable request but
/// not another `EXPLAIN` (or `STATS`).
fn decode_request_inner<'a>(
    opcode: u8,
    rd: &mut Rd<'a>,
    explainable: bool,
) -> Result<RequestView<'a>, ProtocolError> {
    match opcode {
        OP_RANGE => Ok(RequestView::Range { desc: read_desc(rd)?, region: rd.aabb()? }),
        OP_COUNT => Ok(RequestView::Count { desc: read_desc(rd)?, region: rd.aabb()? }),
        OP_KNN => Ok(RequestView::Knn { desc: read_desc(rd)?, p: rd.vec3()?, k: rd.u32()? }),
        OP_TOUCHING => {
            Ok(RequestView::Touching { desc: read_desc(rd)?, other: rd.str()?, epsilon: rd.f64()? })
        }
        OP_WALKTHROUGH => {
            let tenant = rd.u32()?;
            let mi = rd.u8()?;
            let method = *WalkthroughMethod::ALL
                .get(mi as usize)
                .ok_or(ProtocolError::Malformed("walkthrough method out of range"))?;
            let neuron = rd.u32()?;
            let n = rd.count(4)?;
            let mut sections = Vec::with_capacity(n);
            for _ in 0..n {
                sections.push(rd.u32()?);
            }
            let n = rd.count(24)?;
            let mut waypoints = Vec::with_capacity(n);
            for _ in 0..n {
                waypoints.push(rd.vec3()?);
            }
            let n = rd.count(48)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(rd.aabb()?);
            }
            let view_radius = rd.f64()?;
            Ok(RequestView::Walkthrough {
                tenant,
                method,
                path: NavigationPath { neuron, sections, waypoints, queries, view_radius },
            })
        }
        OP_STATS => Ok(RequestView::Stats { tenant: rd.u32()? }),
        OP_HEALTH => Ok(RequestView::Health),
        OP_METRICS => Ok(RequestView::Metrics),
        OP_INSERT => Ok(RequestView::Insert { tenant: rd.u32()?, segment: read_segment(rd)? }),
        OP_REMOVE => Ok(RequestView::Remove { tenant: rd.u32()?, id: rd.u64()? }),
        OP_EXPLAIN if explainable => {
            let inner_op = rd.u8()?;
            if inner_op == OP_STATS {
                return Err(ProtocolError::Malformed("EXPLAIN cannot wrap STATS"));
            }
            if inner_op == OP_HEALTH {
                return Err(ProtocolError::Malformed("EXPLAIN cannot wrap HEALTH"));
            }
            if inner_op == OP_INSERT || inner_op == OP_REMOVE {
                return Err(ProtocolError::Malformed("EXPLAIN cannot wrap a write"));
            }
            if inner_op == OP_METRICS {
                return Err(ProtocolError::Malformed("EXPLAIN cannot wrap METRICS"));
            }
            let inner = decode_request_inner(inner_op, rd, false)?;
            Ok(RequestView::Explain(Box::new(inner)))
        }
        OP_EXPLAIN => Err(ProtocolError::Malformed("EXPLAIN cannot nest")),
        other => Err(ProtocolError::UnknownOpcode(other)),
    }
}

/// Decode a request frame body (opcode + payload as returned by
/// [`read_frame`]) into the allocation-free view.
pub fn decode_request_view(opcode: u8, payload: &[u8]) -> Result<RequestView<'_>, ProtocolError> {
    let mut rd = Rd::new(payload);
    let req = decode_request_inner(opcode, &mut rd, true)?;
    rd.finish()?;
    Ok(req)
}

/// Decode a request frame body into the owned form.
pub fn decode_request(opcode: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    Ok(decode_request_view(opcode, payload)?.into_owned())
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn put_segment(out: &mut Vec<u8>, s: &NeuronSegment) {
    put_u64(out, s.id);
    put_u32(out, s.neuron);
    put_u32(out, s.section);
    put_u32(out, s.index_on_section);
    put_vec3(out, s.geom.p0);
    put_vec3(out, s.geom.p1);
    put_f64(out, s.geom.radius);
}

fn read_segment(rd: &mut Rd<'_>) -> Result<NeuronSegment, ProtocolError> {
    Ok(NeuronSegment {
        id: rd.u64()?,
        neuron: rd.u32()?,
        section: rd.u32()?,
        index_on_section: rd.u32()?,
        geom: Segment { p0: rd.vec3()?, p1: rd.vec3()?, radius: rd.f64()? },
    })
}

fn put_stats(out: &mut Vec<u8>, stats: &QueryStats) {
    put_u64(out, stats.results);
    put_u64(out, stats.nodes_read);
    put_u64(out, stats.objects_tested);
    put_u64(out, stats.reseeds);
    put_u64(out, stats.cache_hits);
    put_u64(out, stats.cache_misses);
    put_u64(out, stats.cache_evictions);
    put_u64(out, stats.retries);
    put_u64(out, stats.pages_quarantined);
}

fn read_stats(rd: &mut Rd<'_>) -> Result<QueryStats, ProtocolError> {
    Ok(QueryStats {
        results: rd.u64()?,
        nodes_read: rd.u64()?,
        objects_tested: rd.u64()?,
        reseeds: rd.u64()?,
        cache_hits: rd.u64()?,
        cache_misses: rd.u64()?,
        cache_evictions: rd.u64()?,
        retries: rd.u64()?,
        pages_quarantined: rd.u64()?,
    })
}

/// Append one segment-chunk frame.
pub fn encode_segment_chunk(segments: &[NeuronSegment], out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_SEGMENT_CHUNK);
    put_u32(out, segments.len() as u32);
    for s in segments {
        put_segment(out, s);
    }
    end_frame(out, at);
}

/// Append one neighbour-chunk frame.
pub fn encode_neighbor_chunk(neighbors: &[Neighbor], out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_NEIGHBOR_CHUNK);
    put_u32(out, neighbors.len() as u32);
    for n in neighbors {
        put_segment(out, &n.segment);
        put_f64(out, n.distance);
    }
    end_frame(out, at);
}

/// Append one pair-chunk frame.
pub fn encode_pair_chunk(pairs: &[(u32, u32)], out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_PAIR_CHUNK);
    put_u32(out, pairs.len() as u32);
    for (a, b) in pairs {
        put_u32(out, *a);
        put_u32(out, *b);
    }
    end_frame(out, at);
}

/// Append the end-of-stream frame.
pub fn encode_done(stats: &QueryStats, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_DONE);
    put_stats(out, stats);
    end_frame(out, at);
}

/// Append a count-only answer.
pub fn encode_count(count: u64, stats: &QueryStats, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_COUNT_RESULT);
    put_u64(out, count);
    put_stats(out, stats);
    end_frame(out, at);
}

/// Append a plan answer.
pub fn encode_plan(plan: &PlanWire, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_PLAN_RESULT);
    put_str(out, &plan.operation);
    put_str(out, &plan.backend);
    put_u32(out, plan.shards_total);
    put_u32(out, plan.shards_probed);
    put_u64(out, plan.estimated_reads);
    let mut flags = 0u8;
    if plan.pushdown_filter {
        flags |= FLAG_FILTER;
    }
    if plan.pushdown_limit.is_some() {
        flags |= FLAG_LIMIT;
    }
    if plan.population.is_some() {
        flags |= FLAG_POPULATION;
    }
    out.push(flags);
    if let Some(name) = &plan.population {
        put_str(out, name);
    }
    if let Some(limit) = plan.pushdown_limit {
        put_u32(out, limit);
    }
    end_frame(out, at);
}

/// Append a per-tenant totals answer.
pub fn encode_stats_result(t: &TenantTotals, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_STATS_RESULT);
    put_u32(out, t.tenant);
    put_u64(out, t.queries);
    put_u64(out, t.results);
    put_u64(out, t.nodes_read);
    put_u64(out, t.objects_tested);
    put_u64(out, t.reseeds);
    end_frame(out, at);
}

/// Append an application error frame.
pub fn encode_error(code: u16, message: &str, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_ERROR);
    put_u16(out, code);
    put_str(out, message);
    end_frame(out, at);
}

/// Append the admission-control rejection frame.
pub fn encode_busy(out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_BUSY);
    end_frame(out, at);
}

/// Append a metrics-snapshot answer.
pub fn encode_metrics_result(snap: &MetricsSnapshot, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_METRICS_RESULT);
    snap.encode_into(out);
    end_frame(out, at);
}

/// Append a serving-health answer.
pub fn encode_health(h: &HealthReport, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_HEALTH_RESULT);
    let mut flags = 0u8;
    if h.paged {
        flags |= HEALTH_PAGED;
    }
    if h.degraded {
        flags |= HEALTH_DEGRADED;
    }
    if h.wal.is_some() {
        flags |= HEALTH_WAL;
    }
    if h.wal.is_some_and(|w| w.recovered_torn_tail) {
        flags |= HEALTH_WAL_TORN;
    }
    out.push(flags);
    put_u32(out, h.quarantined.len() as u32);
    for page in &h.quarantined {
        put_u64(out, *page);
    }
    if let Some(w) = &h.wal {
        put_u64(out, w.last_lsn);
        put_u64(out, w.wal_bytes);
        put_u64(out, w.pending_ops);
        put_u64(out, w.epoch);
        put_u64(out, w.replayed_ops);
        put_u64(out, w.checkpoints);
    }
    end_frame(out, at);
}

/// Append a durability acknowledgement.
pub fn encode_write_ack(ack: &WriteAckWire, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_WRITE_ACK);
    put_u64(out, ack.lsn);
    put_u64(out, ack.pending);
    end_frame(out, at);
}

/// Decode a `WRITE_ACK` payload.
pub fn decode_write_ack(payload: &[u8]) -> Result<WriteAckWire, ProtocolError> {
    let mut rd = Rd::new(payload);
    let ack = WriteAckWire { lsn: rd.u64()?, pending: rd.u64()? };
    rd.finish()?;
    Ok(ack)
}

/// Append the budget-expired terminator (in place of `DONE`).
pub fn encode_timeout(stats: &QueryStats, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_TIMEOUT);
    put_stats(out, stats);
    end_frame(out, at);
}

/// Append a walkthrough summary.
pub fn encode_walk(w: &WalkSummary, out: &mut Vec<u8>) {
    let at = begin_frame(out, OP_WALK_RESULT);
    put_u32(out, w.steps);
    put_f64(out, w.total_stall_ms);
    put_u64(out, w.demand_misses);
    put_u64(out, w.demand_hits);
    put_u64(out, w.prefetched);
    put_u64(out, w.useful_prefetched);
    end_frame(out, at);
}

/// Append an owned response as one frame — the test/round-trip surface;
/// the server streams through the specific `encode_*` functions.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Segments(s) => encode_segment_chunk(s, out),
        Response::Neighbors(n) => encode_neighbor_chunk(n, out),
        Response::Pairs(p) => encode_pair_chunk(p, out),
        Response::Done(stats) => encode_done(stats, out),
        Response::Count { count, stats } => encode_count(*count, stats, out),
        Response::Plan(plan) => encode_plan(plan, out),
        Response::Stats(t) => encode_stats_result(t, out),
        Response::Error { code, message } => encode_error(*code, message, out),
        Response::Busy => encode_busy(out),
        Response::Walkthrough(w) => encode_walk(w, out),
        Response::Health(h) => encode_health(h, out),
        Response::Timeout(stats) => encode_timeout(stats, out),
        Response::WriteAck(ack) => encode_write_ack(ack, out),
        Response::Metrics(snap) => encode_metrics_result(snap, out),
    }
}

// ---------------------------------------------------------------------
// Response decoding
// ---------------------------------------------------------------------

/// Decode a segment chunk into a caller-provided (warm) buffer — the
/// client's allocation-free receive path. Appends; does not clear.
pub fn decode_segment_chunk_into(
    payload: &[u8],
    out: &mut Vec<NeuronSegment>,
) -> Result<(), ProtocolError> {
    let mut rd = Rd::new(payload);
    let n = rd.count(76)?;
    out.reserve(n);
    for _ in 0..n {
        out.push(read_segment(&mut rd)?);
    }
    rd.finish()
}

/// Decode a neighbour chunk into a caller-provided buffer.
pub fn decode_neighbor_chunk_into(
    payload: &[u8],
    out: &mut Vec<Neighbor>,
) -> Result<(), ProtocolError> {
    let mut rd = Rd::new(payload);
    let n = rd.count(84)?;
    out.reserve(n);
    for _ in 0..n {
        let segment = read_segment(&mut rd)?;
        out.push(Neighbor { segment, distance: rd.f64()? });
    }
    rd.finish()
}

/// Decode a pair chunk into a caller-provided buffer.
pub fn decode_pair_chunk_into(
    payload: &[u8],
    out: &mut Vec<(u32, u32)>,
) -> Result<(), ProtocolError> {
    let mut rd = Rd::new(payload);
    let n = rd.count(8)?;
    out.reserve(n);
    for _ in 0..n {
        let a = rd.u32()?;
        let b = rd.u32()?;
        out.push((a, b));
    }
    rd.finish()
}

/// Decode a `DONE` payload.
pub fn decode_done(payload: &[u8]) -> Result<QueryStats, ProtocolError> {
    let mut rd = Rd::new(payload);
    let stats = read_stats(&mut rd)?;
    rd.finish()?;
    Ok(stats)
}

/// Decode a `COUNT_RESULT` payload.
pub fn decode_count(payload: &[u8]) -> Result<(u64, QueryStats), ProtocolError> {
    let mut rd = Rd::new(payload);
    let count = rd.u64()?;
    let stats = read_stats(&mut rd)?;
    rd.finish()?;
    Ok((count, stats))
}

/// Stable reason strings for metrics-snapshot decode failures.
fn metrics_decode_reason(e: &neurospatial::obs::SnapshotDecodeError) -> &'static str {
    use neurospatial::obs::SnapshotDecodeError as E;
    match e {
        E::Truncated => "metrics snapshot truncated",
        E::UnsupportedVersion(_) => "unsupported metrics snapshot version",
        E::BadName => "metrics snapshot name not UTF-8",
        E::TrailingBytes(_) => "trailing bytes after metrics snapshot",
    }
}

/// Decode any response frame body into the owned form.
pub fn decode_response(opcode: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut rd = Rd::new(payload);
    let resp = match opcode {
        OP_SEGMENT_CHUNK => {
            let mut v = Vec::new();
            decode_segment_chunk_into(payload, &mut v)?;
            return Ok(Response::Segments(v));
        }
        OP_NEIGHBOR_CHUNK => {
            let mut v = Vec::new();
            decode_neighbor_chunk_into(payload, &mut v)?;
            return Ok(Response::Neighbors(v));
        }
        OP_PAIR_CHUNK => {
            let mut v = Vec::new();
            decode_pair_chunk_into(payload, &mut v)?;
            return Ok(Response::Pairs(v));
        }
        OP_DONE => Response::Done(read_stats(&mut rd)?),
        OP_COUNT_RESULT => Response::Count { count: rd.u64()?, stats: read_stats(&mut rd)? },
        OP_PLAN_RESULT => {
            let operation = rd.str()?.to_string();
            let backend = rd.str()?.to_string();
            let shards_total = rd.u32()?;
            let shards_probed = rd.u32()?;
            let estimated_reads = rd.u64()?;
            let flags = rd.u8()?;
            if flags & !(FLAG_POPULATION | FLAG_FILTER | FLAG_LIMIT) != 0 {
                return Err(ProtocolError::Malformed("unknown plan flag bits"));
            }
            let population =
                if flags & FLAG_POPULATION != 0 { Some(rd.str()?.to_string()) } else { None };
            let pushdown_limit = if flags & FLAG_LIMIT != 0 { Some(rd.u32()?) } else { None };
            Response::Plan(PlanWire {
                operation,
                backend,
                shards_total,
                shards_probed,
                estimated_reads,
                pushdown_filter: flags & FLAG_FILTER != 0,
                pushdown_limit,
                population,
            })
        }
        OP_STATS_RESULT => Response::Stats(TenantTotals {
            tenant: rd.u32()?,
            queries: rd.u64()?,
            results: rd.u64()?,
            nodes_read: rd.u64()?,
            objects_tested: rd.u64()?,
            reseeds: rd.u64()?,
        }),
        OP_ERROR => Response::Error { code: rd.u16()?, message: rd.str()?.to_string() },
        OP_BUSY => Response::Busy,
        OP_WALK_RESULT => Response::Walkthrough(WalkSummary {
            steps: rd.u32()?,
            total_stall_ms: rd.f64()?,
            demand_misses: rd.u64()?,
            demand_hits: rd.u64()?,
            prefetched: rd.u64()?,
            useful_prefetched: rd.u64()?,
        }),
        OP_HEALTH_RESULT => {
            let flags = rd.u8()?;
            if flags & !(HEALTH_PAGED | HEALTH_DEGRADED | HEALTH_WAL | HEALTH_WAL_TORN) != 0 {
                return Err(ProtocolError::Malformed("unknown health flag bits"));
            }
            if flags & HEALTH_WAL_TORN != 0 && flags & HEALTH_WAL == 0 {
                return Err(ProtocolError::Malformed("torn-tail flag without WAL block"));
            }
            let n = rd.count(8)?;
            let mut quarantined = Vec::with_capacity(n);
            for _ in 0..n {
                quarantined.push(rd.u64()?);
            }
            let wal = if flags & HEALTH_WAL != 0 {
                Some(WalWire {
                    last_lsn: rd.u64()?,
                    wal_bytes: rd.u64()?,
                    pending_ops: rd.u64()?,
                    epoch: rd.u64()?,
                    replayed_ops: rd.u64()?,
                    checkpoints: rd.u64()?,
                    recovered_torn_tail: flags & HEALTH_WAL_TORN != 0,
                })
            } else {
                None
            };
            Response::Health(HealthReport {
                paged: flags & HEALTH_PAGED != 0,
                degraded: flags & HEALTH_DEGRADED != 0,
                quarantined,
                wal,
            })
        }
        OP_TIMEOUT => Response::Timeout(read_stats(&mut rd)?),
        OP_WRITE_ACK => Response::WriteAck(WriteAckWire { lsn: rd.u64()?, pending: rd.u64()? }),
        OP_METRICS_RESULT => {
            // The snapshot codec is self-delimiting and rejects both
            // truncation and trailing bytes, so it consumes the payload.
            return MetricsSnapshot::decode(payload)
                .map(Response::Metrics)
                .map_err(|e| ProtocolError::Malformed(metrics_decode_reason(&e)));
        }
        other => return Err(ProtocolError::UnknownOpcode(other)),
    };
    rd.finish()?;
    Ok(resp)
}
