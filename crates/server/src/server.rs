//! The serving engine: one acceptor, a fixed worker pool, a bounded
//! hand-off queue in between.
//!
//! The shape follows the paper's deployment story — one resident
//! database, many analysts' viewers hitting it — under this repo's
//! offline constraint (no async runtime, `std::net` only):
//!
//! * the **acceptor** owns the listening socket. Each accepted
//!   connection is offered to the workers through a *bounded*
//!   [`std::sync::mpsc::sync_channel`]; when every worker is busy and
//!   the queue is full, the acceptor writes one `BUSY` frame and closes
//!   the socket — admission control as fast-reject, so overload sheds
//!   arrivals in microseconds instead of stacking them into a latency
//!   cliff;
//! * each **worker** owns one connection at a time, plus a persistent
//!   [`QuerySession`] and read/write buffers that live across
//!   connections — after warmup, serving a range/count/knn request
//!   performs **zero heap allocations** end to end (decode borrows from
//!   the read buffer, the session rebinds per request, results stream
//!   from the session's reused buffer straight into the write buffer);
//! * per-tenant [`QueryStats`] totals accumulate under a mutex keyed by
//!   the request's tenant id and are served back by the `STATS` opcode.
//!
//! Predicates cannot cross the wire, so filters are *named*: the host
//! registers `(id, predicate)` pairs in a [`FilterRegistry`] and clients
//! reference them by id in the request envelope.
//!
//! [`serve_with`] runs the whole arrangement inside a
//! [`std::thread::scope`], so the server borrows the database directly
//! — no `Arc`, no `'static` — and shutdown is a join, not a leak.

use crate::protocol::{self as p, ProtocolError, RequestView};
use neurospatial::model::{NavigationPath, NeuronSegment};
use neurospatial::obs::{self, Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use neurospatial::{
    NeuroDb, NeuroError, Plan, QuerySession, QueryStats, SegmentPredicate, WalkthroughMethod,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// A server-registered predicate, shareable across worker threads.
pub type ServerPredicate = dyn Fn(&NeuronSegment) -> bool + Send + Sync;

/// Named predicates clients can reference by id (`FLAG_FILTER`).
#[derive(Default)]
pub struct FilterRegistry<'a> {
    entries: Vec<(u32, &'a ServerPredicate)>,
}

impl<'a> FilterRegistry<'a> {
    pub fn new() -> Self {
        FilterRegistry { entries: Vec::new() }
    }

    /// Register `pred` under `id` (last registration wins on duplicate
    /// ids).
    pub fn register(&mut self, id: u32, pred: &'a ServerPredicate) -> &mut Self {
        self.entries.retain(|(i, _)| *i != id);
        self.entries.push((id, pred));
        self
    }

    fn get(&self, id: u32) -> Option<&'a ServerPredicate> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, p)| *p)
    }
}

/// Knobs for [`serve_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the in-flight connection ceiling. These block on
    /// socket I/O, not CPU, so the count may exceed the core count
    /// (cf. `Executor::io_bound`).
    pub workers: usize,
    /// Accepted-but-unclaimed connections the hand-off queue holds; 0
    /// means a connection is admitted only if a worker is already
    /// waiting. `workers + queue` is the admission ceiling — everything
    /// beyond it is fast-rejected with `BUSY`.
    pub queue: usize,
    /// Segments per streamed response chunk.
    pub chunk: usize,
    /// Idle-read poll interval: how often parked workers re-check the
    /// shutdown flag. Bounds shutdown latency, not request latency.
    pub poll: Duration,
    /// Ceiling on wall-clock spent reading a *single frame* once its
    /// first byte has arrived (a connection may idle between frames
    /// indefinitely). A client that trickles a frame byte-by-byte — the
    /// slow-loris shape — is evicted when the ceiling trips, freeing the
    /// worker.
    pub read_deadline: Duration,
    /// Write timeout on the response socket: a client that stops
    /// draining its receive window is disconnected instead of pinning
    /// the worker.
    pub write_deadline: Duration,
    /// Per-request execution budget. A range stream that exceeds it is
    /// cut short: the segments already encoded are sent, terminated by a
    /// typed `TIMEOUT` frame (in place of `DONE`) carrying the partial
    /// stats.
    pub request_budget: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 16,
            chunk: p::SEGMENT_CHUNK,
            poll: Duration::from_millis(25),
            read_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(5),
            request_budget: Duration::from_secs(5),
        }
    }
}

/// Request-opcode families, indexed by [`op_index`]; each gets its own
/// per-server latency histogram.
const OP_LATENCY_NAMES: [&str; 11] = [
    "server_range_latency_ns",
    "server_count_latency_ns",
    "server_knn_latency_ns",
    "server_touching_latency_ns",
    "server_walkthrough_latency_ns",
    "server_explain_latency_ns",
    "server_stats_latency_ns",
    "server_health_latency_ns",
    "server_insert_latency_ns",
    "server_remove_latency_ns",
    "server_metrics_latency_ns",
];

/// Which [`OP_LATENCY_NAMES`] slot a request bills its service time to.
fn op_index(req: &RequestView<'_>) -> usize {
    match req {
        RequestView::Range { .. } => 0,
        RequestView::Count { .. } => 1,
        RequestView::Knn { .. } => 2,
        RequestView::Touching { .. } => 3,
        RequestView::Walkthrough { .. } => 4,
        RequestView::Explain(_) => 5,
        RequestView::Stats { .. } => 6,
        RequestView::Health => 7,
        RequestView::Insert { .. } => 8,
        RequestView::Remove { .. } => 9,
        RequestView::Metrics => 10,
    }
}

/// Monotonic serving counters, readable while the server runs.
///
/// Since the observability subsystem landed, these are handles into a
/// per-server [`MetricsRegistry`] (so every server instance starts from
/// zero) rather than ad-hoc atomics; the field names and the
/// [`Counter::load`] shim keep existing call sites source-compatible.
/// A `METRICS` scrape merges this registry with the process-wide
/// [`obs::global`] one.
pub struct ServerMetrics {
    registry: MetricsRegistry,
    /// Connections handed to a worker.
    pub accepted: Arc<Counter>,
    /// Connections shed with `BUSY` by admission control.
    pub rejected: Arc<Counter>,
    /// Requests executed (any outcome).
    pub requests: Arc<Counter>,
    /// Frames that failed to decode (connection dropped after reply).
    pub protocol_errors: Arc<Counter>,
    /// Connections evicted by the slow-loris read deadline.
    pub read_timeouts: Arc<Counter>,
    /// Requests cut short by the per-request execution budget
    /// (answered with a `TIMEOUT` frame).
    pub request_timeouts: Arc<Counter>,
    /// Service-time histogram per request opcode family.
    op_latency: [Arc<Histogram>; OP_LATENCY_NAMES.len()],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let accepted = registry.counter("server_connections_accepted_total");
        let rejected = registry.counter("server_connections_rejected_total");
        let requests = registry.counter("server_requests_total");
        let protocol_errors = registry.counter("server_protocol_errors_total");
        let read_timeouts = registry.counter("server_read_timeouts_total");
        let request_timeouts = registry.counter("server_request_timeouts_total");
        let op_latency = OP_LATENCY_NAMES.map(|name| registry.histogram(name));
        ServerMetrics {
            registry,
            accepted,
            rejected,
            requests,
            protocol_errors,
            read_timeouts,
            request_timeouts,
            op_latency,
        }
    }
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("accepted", &self.accepted.get())
            .field("rejected", &self.rejected.get())
            .field("requests", &self.requests.get())
            .field("protocol_errors", &self.protocol_errors.get())
            .field("read_timeouts", &self.read_timeouts.get())
            .field("request_timeouts", &self.request_timeouts.get())
            .finish()
    }
}

impl ServerMetrics {
    /// Snapshot of this server's private registry (counters above plus
    /// the per-opcode latency histograms).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// What the host callback sees while the server is live.
pub struct ServerHandle<'s> {
    addr: SocketAddr,
    metrics: &'s ServerMetrics,
    stop: &'s AtomicBool,
}

impl ServerHandle<'_> {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> &ServerMetrics {
        self.metrics
    }

    /// Request shutdown before the callback returns (it is also
    /// requested automatically when the callback exits).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Per-tenant accounting: `queries` counts executed requests, the rest
/// are field-wise [`QueryStats`] sums.
#[derive(Debug, Clone, Copy, Default)]
struct TenantAccount {
    queries: u64,
    stats: QueryStats,
}

struct Shared<'s> {
    db: &'s NeuroDb,
    filters: &'s FilterRegistry<'s>,
    cfg: &'s ServerConfig,
    metrics: &'s ServerMetrics,
    tenants: Mutex<HashMap<u32, TenantAccount>>,
    stop: AtomicBool,
}

/// Run the server over `db` until the callback returns: bind, spawn the
/// acceptor and `cfg.workers` workers inside a [`std::thread::scope`],
/// call `f` with the live [`ServerHandle`], then shut down and join
/// everything before returning `f`'s result.
pub fn serve_with<R>(
    db: &NeuroDb,
    filters: &FilterRegistry<'_>,
    cfg: &ServerConfig,
    f: impl FnOnce(&ServerHandle<'_>) -> R,
) -> io::Result<R> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = ServerMetrics::default();
    let shared = Shared {
        db,
        filters,
        cfg,
        metrics: &metrics,
        tenants: Mutex::new(HashMap::new()),
        stop: AtomicBool::new(false),
    };
    let workers = cfg.workers.max(1);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue);
    let rx = Mutex::new(rx);

    let result = std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared, &rx));
        }
        let acceptor = {
            let (shared, listener, tx) = (&shared, &listener, tx.clone());
            scope.spawn(move || acceptor_loop(shared, listener, &tx))
        };
        drop(tx); // workers exit once the acceptor's clone is gone

        let handle = ServerHandle { addr, metrics: &metrics, stop: &shared.stop };

        // Shutdown must fire even if the callback panics — otherwise the
        // scope would join workers that never see the stop flag and the
        // unwind deadlocks instead of propagating.
        struct StopGuard<'a> {
            stop: &'a AtomicBool,
            addr: std::net::SocketAddr,
        }
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.stop.store(true, Ordering::Release);
                // Unblock a parked `accept` with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
            }
        }
        let guard = StopGuard { stop: &shared.stop, addr };
        let result = f(&handle);

        drop(guard);
        let _ = acceptor.join();
        result
    });
    Ok(result)
}

fn acceptor_loop(shared: &Shared<'_>, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    // Prebuilt BUSY frame: rejection must not allocate.
    let mut busy = Vec::new();
    p::encode_busy(&mut busy);
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _admission = obs::span!(obs::Stage::Admission);
        match tx.try_send(stream) {
            Ok(()) => {
                shared.metrics.accepted.inc();
            }
            Err(TrySendError::Full(mut stream)) => {
                shared.metrics.rejected.inc();
                let _ = stream.write_all(&busy);
                // Drop closes the socket; the client sees BUSY then EOF.
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop<'db>(shared: &Shared<'db>, rx: &Mutex<Receiver<TcpStream>>) {
    // Worker-lifetime state, reused across every connection this worker
    // serves: the query session (scratch + result buffers) and the
    // frame buffers.
    let mut session = shared.db.query().session();
    let mut read_buf: Vec<u8> = Vec::with_capacity(4096);
    let mut write_buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    loop {
        // Take the receiver lock only long enough to claim one
        // connection; time out to observe shutdown.
        let claimed = {
            let rx = rx.lock().expect("receiver lock");
            rx.recv_timeout(shared.cfg.poll)
        };
        match claimed {
            Ok(stream) => {
                if let Err(e) =
                    serve_connection(shared, stream, &mut session, &mut read_buf, &mut write_buf)
                {
                    if e.kind() == io::ErrorKind::TimedOut {
                        shared.metrics.read_timeouts.inc();
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// `read_exact` that survives read timeouts without losing its place,
/// so the idle poll can observe shutdown between (but never inside)
/// frames. Returns `Ok(false)` on clean end-of-stream or shutdown
/// *before any byte* when `idle` (frame-boundary) reads are allowed to
/// give up.
///
/// The `deadline` bounds wall-clock from the first byte of this read to
/// its completion — a connection may sit idle between frames forever,
/// but once a frame has started arriving it must finish within the
/// deadline or the connection is evicted (`TimedOut`). This is the
/// slow-loris defense: trickling one byte per poll interval no longer
/// pins a worker.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    idle: bool,
    deadline: Duration,
) -> io::Result<bool> {
    let mut off = 0;
    // The clock starts when the read stops being idle: immediately for
    // mid-frame (body) reads, at the first byte for header reads.
    let mut started: Option<Instant> = if idle { None } else { Some(Instant::now()) };
    while off < buf.len() {
        if let Some(start) = started {
            if start.elapsed() > deadline {
                return Err(io::ErrorKind::TimedOut.into());
            }
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return if off == 0 && idle {
                    Ok(false)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                }
            }
            Ok(n) => {
                off += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Ordering::Acquire) && off == 0 && idle {
                    return Ok(false);
                }
                if stop.load(Ordering::Acquire) {
                    return Err(e); // mid-frame at shutdown: abandon
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection<'db>(
    shared: &Shared<'db>,
    mut stream: TcpStream,
    session: &mut QuerySession<'db>,
    read_buf: &mut Vec<u8>,
    write_buf: &mut Vec<u8>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.cfg.poll))?;
    stream.set_write_timeout(Some(shared.cfg.write_deadline))?;
    let deadline = shared.cfg.read_deadline;
    loop {
        // Frame header.
        let mut header = [0u8; 4];
        if !read_full(&mut stream, &mut header, &shared.stop, true, deadline)? {
            return Ok(()); // clean EOF or shutdown at a frame boundary
        }
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 || len > p::MAX_FRAME {
            shared.metrics.protocol_errors.inc();
            write_buf.clear();
            p::encode_error(p::ERR_PROTOCOL, "frame length out of range", write_buf);
            let _ = stream.write_all(write_buf);
            return Ok(());
        }
        read_buf.resize(len, 0);
        if !read_full(&mut stream, read_buf, &shared.stop, false, deadline)? {
            return Ok(());
        }
        let (opcode, payload) = (read_buf[0], &read_buf[1..]);
        let decoded = {
            let _decode = obs::span!(obs::Stage::Decode);
            p::decode_request_view(opcode, payload)
        };
        match decoded {
            Ok(req) => {
                shared.metrics.requests.inc();
                write_buf.clear();
                let served = Instant::now();
                serve_request(shared, session, &req, write_buf);
                shared.metrics.op_latency[op_index(&req)].record_duration(served.elapsed());
                let _encode = obs::span!(obs::Stage::Encode);
                stream.write_all(write_buf)?;
            }
            Err(err) => {
                // A connection that desynchronized its framing cannot be
                // trusted further: reply, then close.
                shared.metrics.protocol_errors.inc();
                write_buf.clear();
                p::encode_error(p::ERR_PROTOCOL, protocol_error_name(err), write_buf);
                let _ = stream.write_all(write_buf);
                return Ok(());
            }
        }
    }
}

/// Static description for the error frame — no `format!` on the reply
/// path.
fn protocol_error_name(err: ProtocolError) -> &'static str {
    match err {
        ProtocolError::Truncated => "truncated frame",
        ProtocolError::UnknownOpcode(_) => "unknown opcode",
        ProtocolError::FrameTooLarge(_) => "frame length out of range",
        ProtocolError::Malformed(what) => what,
    }
}

/// Bind the session to a request's envelope. On failure the session is
/// left cleared (not carrying a stale binding) and an error frame is
/// already in `out`.
fn bind_session<'db>(
    session: &mut QuerySession<'db>,
    shared: &Shared<'db>,
    desc: &p::QueryDescView<'_>,
    out: &mut Vec<u8>,
) -> bool {
    if session.set_population(desc.population).is_err() {
        p::encode_error(p::ERR_UNKNOWN_POPULATION, "unknown population", out);
        return false;
    }
    let filter = match desc.filter_id {
        None => None,
        Some(id) => match shared.filters.get(id) {
            Some(pred) => {
                let pred: &SegmentPredicate<'db> = pred;
                Some(pred)
            }
            None => {
                p::encode_error(p::ERR_UNKNOWN_FILTER, "unknown filter id", out);
                return false;
            }
        },
    };
    session.set_filter(filter);
    session.set_limit(desc.limit.map(|l| l as usize));
    true
}

fn account(shared: &Shared<'_>, tenant: u32, stats: &QueryStats) {
    let mut tenants = shared.tenants.lock().expect("tenant lock");
    let acct = tenants.entry(tenant).or_default();
    acct.queries += 1;
    acct.stats.merge(stats);
}

fn serve_request<'db>(
    shared: &Shared<'db>,
    session: &mut QuerySession<'db>,
    req: &RequestView<'_>,
    out: &mut Vec<u8>,
) {
    match req {
        RequestView::Range { desc, region } => {
            if !bind_session(session, shared, desc, out) {
                return;
            }
            let deadline = Instant::now() + shared.cfg.request_budget;
            match session
                .try_range_budgeted(region, desc.allow_partial, || Instant::now() < deadline)
            {
                Ok((segments, stats, completed)) => {
                    for chunk in segments.chunks(shared.cfg.chunk.max(1)) {
                        p::encode_segment_chunk(chunk, out);
                    }
                    if completed {
                        p::encode_done(&stats, out);
                    } else {
                        shared.metrics.request_timeouts.inc();
                        p::encode_timeout(&stats, out);
                    }
                    account(shared, desc.tenant, &stats);
                }
                Err(err) => encode_neuro_error(&err, out),
            }
        }
        RequestView::Count { desc, region } => {
            if !bind_session(session, shared, desc, out) {
                return;
            }
            match session.try_count(region, desc.allow_partial) {
                Ok(stats) => {
                    p::encode_count(stats.results, &stats, out);
                    account(shared, desc.tenant, &stats);
                }
                Err(err) => encode_neuro_error(&err, out),
            }
        }
        RequestView::Knn { desc, p: point, k } => {
            if !bind_session(session, shared, desc, out) {
                return;
            }
            let (neighbors, stats) = session.knn(*point, *k as usize);
            for chunk in neighbors.chunks(shared.cfg.chunk.max(1)) {
                p::encode_neighbor_chunk(chunk, out);
            }
            p::encode_done(&stats, out);
            account(shared, desc.tenant, &stats);
        }
        RequestView::Touching { desc, other, epsilon } => {
            serve_touching(shared, desc, other, *epsilon, out);
        }
        RequestView::Walkthrough { tenant, method, path } => {
            serve_walkthrough(shared, *tenant, *method, path, out);
        }
        RequestView::Explain(inner) => serve_explain(shared, inner, out),
        RequestView::Insert { tenant, segment } => {
            serve_write(shared, *tenant, shared.db.insert_segment(*segment), out);
        }
        RequestView::Remove { tenant, id } => {
            serve_write(shared, *tenant, shared.db.remove_segment(*id), out);
        }
        RequestView::Health => {
            let mut report = match shared.db.paged_index() {
                Some(paged) => {
                    let quarantined = paged.quarantined_pages();
                    p::HealthReport {
                        paged: true,
                        degraded: !quarantined.is_empty(),
                        quarantined,
                        wal: None,
                    }
                }
                None => p::HealthReport::default(),
            };
            report.wal = shared.db.wal_health().map(|w| p::WalWire {
                last_lsn: w.last_lsn,
                wal_bytes: w.wal_bytes,
                pending_ops: w.pending_ops,
                epoch: w.epoch,
                replayed_ops: w.replayed_ops,
                checkpoints: w.checkpoints,
                recovered_torn_tail: w.recovered_torn_tail,
            });
            p::encode_health(&report, out);
        }
        RequestView::Stats { tenant } => {
            let tenants = shared.tenants.lock().expect("tenant lock");
            let acct = tenants.get(tenant).copied().unwrap_or_default();
            p::encode_stats_result(
                &p::TenantTotals {
                    tenant: *tenant,
                    queries: acct.queries,
                    results: acct.stats.results,
                    nodes_read: acct.stats.nodes_read,
                    objects_tested: acct.stats.objects_tested,
                    reseeds: acct.stats.reseeds,
                },
                out,
            );
        }
        RequestView::Metrics => {
            // Process-wide series (query/storage/scout) merged with the
            // per-server registry (connection/request counters, per-op
            // latency). Name sets are disjoint, so merge never sums
            // across the two sources.
            let mut snap = obs::global().snapshot();
            snap.merge(&shared.metrics.snapshot());
            p::encode_metrics_result(&snap, out);
        }
    }
}

/// The write path: the ack frame is encoded only after
/// `insert_segment` / `remove_segment` returned — i.e. after the WAL
/// commit record is on stable storage. A failed write encodes a typed
/// error instead; [`p::ERR_WRITE_REJECTED`] guarantees nothing was
/// logged. After a successful write the worker runs the re-freeze check
/// inline: swaps are rare (threshold-gated) and concurrent readers are
/// never blocked by one.
fn serve_write(
    shared: &Shared<'_>,
    tenant: u32,
    result: Result<neurospatial::WriteAck, NeuroError>,
    out: &mut Vec<u8>,
) {
    match result {
        Ok(ack) => {
            p::encode_write_ack(&p::WriteAckWire { lsn: ack.lsn, pending: ack.pending }, out);
            account(shared, tenant, &QueryStats::default());
            let _ = shared.db.maybe_refreeze();
        }
        Err(err) => encode_neuro_error(&err, out),
    }
}

/// The ε-join path. Joins materialize pair sets and rebuild per-call
/// structures — they are the analytical lane, not the steady-state one,
/// so this allocates freely via the builder API.
fn serve_touching(
    shared: &Shared<'_>,
    desc: &p::QueryDescView<'_>,
    other: &str,
    epsilon: f64,
    out: &mut Vec<u8>,
) {
    let filter = match desc.filter_id {
        None => None,
        Some(id) => match shared.filters.get(id) {
            Some(pred) => Some(pred),
            None => {
                p::encode_error(p::ERR_UNKNOWN_FILTER, "unknown filter id", out);
                return;
            }
        },
    };
    let wrapped = filter.map(|f| move |s: &NeuronSegment| f(s));
    let mut q = shared.db.query().touching(other, epsilon);
    if let Some(name) = desc.population {
        q = q.in_population(name);
    }
    if let Some(w) = &wrapped {
        q = q.filter(w);
    }
    if let Some(limit) = desc.limit {
        q = q.limit(limit as usize);
    }
    match q.collect() {
        Ok(result) => {
            for chunk in result.pairs.chunks(shared.cfg.chunk.max(1)) {
                p::encode_pair_chunk(chunk, out);
            }
            let stats = QueryStats {
                results: result.stats.results,
                nodes_read: 0,
                objects_tested: result.stats.filter_comparisons + result.stats.refine_comparisons,
                ..QueryStats::default()
            };
            p::encode_done(&stats, out);
            account(shared, desc.tenant, &stats);
        }
        Err(err) => encode_neuro_error(&err, out),
    }
}

fn serve_walkthrough(
    shared: &Shared<'_>,
    tenant: u32,
    method: WalkthroughMethod,
    path: &NavigationPath,
    out: &mut Vec<u8>,
) {
    match shared.db.query().along_path(path).method(method).run() {
        Ok(stats) => {
            p::encode_walk(
                &p::WalkSummary {
                    steps: stats.steps.len() as u32,
                    total_stall_ms: stats.total_stall_ms,
                    demand_misses: stats.total_demand_misses,
                    demand_hits: stats.total_demand_hits,
                    prefetched: stats.total_prefetched,
                    useful_prefetched: stats.useful_prefetched,
                },
                out,
            );
            account(shared, tenant, &QueryStats::default());
        }
        Err(err) => encode_neuro_error(&err, out),
    }
}

fn serve_explain(shared: &Shared<'_>, inner: &RequestView<'_>, out: &mut Vec<u8>) {
    let db = shared.db;
    let plan: Plan = match inner {
        RequestView::Range { desc, region } | RequestView::Count { desc, region } => {
            let filter = desc.filter_id.and_then(|id| shared.filters.get(id));
            let wrapped = filter.map(|f| move |s: &NeuronSegment| f(s));
            let mut q = db.query().range(*region);
            if let Some(name) = desc.population {
                q = q.in_population(name);
            }
            if let Some(w) = &wrapped {
                q = q.filter(w);
            }
            if let Some(limit) = desc.limit {
                q = q.limit(limit as usize);
            }
            q.explain()
        }
        RequestView::Knn { desc, p: point, k } => {
            let filter = desc.filter_id.and_then(|id| shared.filters.get(id));
            let wrapped = filter.map(|f| move |s: &NeuronSegment| f(s));
            let mut q = db.query().knn(*point, *k as usize);
            if let Some(name) = desc.population {
                q = q.in_population(name);
            }
            if let Some(w) = &wrapped {
                q = q.filter(w);
            }
            if let Some(limit) = desc.limit {
                q = q.limit(limit as usize);
            }
            q.explain()
        }
        RequestView::Touching { desc, other, epsilon } => {
            let mut q = db.query().touching(other, *epsilon);
            if let Some(name) = desc.population {
                q = q.in_population(name);
            }
            if let Some(limit) = desc.limit {
                q = q.limit(limit as usize);
            }
            q.explain()
        }
        RequestView::Walkthrough { method, path, .. } => {
            db.query().along_path(path).method(*method).explain()
        }
        RequestView::Explain(_)
        | RequestView::Stats { .. }
        | RequestView::Health
        | RequestView::Metrics
        | RequestView::Insert { .. }
        | RequestView::Remove { .. } => {
            p::encode_error(p::ERR_PROTOCOL, "EXPLAIN cannot wrap this opcode", out);
            return;
        }
    };
    p::encode_plan(
        &p::PlanWire {
            operation: plan.operation.to_string(),
            backend: plan.backend.to_string(),
            shards_total: plan.shards_total as u32,
            shards_probed: plan.shards_probed as u32,
            estimated_reads: plan.estimated_reads,
            pushdown_filter: plan.pushdown_filter,
            pushdown_limit: plan.pushdown_limit.map(|l| l as u32),
            population: plan.population,
        },
        out,
    );
}

fn encode_neuro_error(err: &NeuroError, out: &mut Vec<u8>) {
    let (code, msg): (u16, &str) = match err {
        NeuroError::UnknownPopulation { .. } => (p::ERR_UNKNOWN_POPULATION, "unknown population"),
        NeuroError::WalkthroughUnsupported { .. } => {
            (p::ERR_UNSUPPORTED, "walkthrough requires a paged (FLAT) backend")
        }
        NeuroError::WriteUnsupported => {
            (p::ERR_UNSUPPORTED, "writes need a live (WAL-backed) database")
        }
        NeuroError::WriteRejected { reason } => (p::ERR_WRITE_REJECTED, reason.as_str()),
        NeuroError::DegradedResult { .. } => (
            p::ERR_DEGRADED,
            "query needs quarantined pages; retry with allow_partial for labeled partial results",
        ),
        _ => (p::ERR_INTERNAL, "request failed"),
    };
    p::encode_error(code, msg, out);
}
