//! Capsule-shaped neuron segments: a cylinder with hemispherical caps,
//! defined by an axis `[p0, p1]` and radius `r`.
//!
//! Neuron morphologies (dendrites, axons) are piecewise-linear tubes; the
//! Blue Brain pipeline the paper describes represents them as truncated
//! cones / meshes. A capsule is the standard simulation-friendly
//! approximation: distance queries between capsules reduce to exact
//! segment–segment distance minus the radii, which is what the synapse
//! placement (distance) join in TOUCH computes.

use crate::{Aabb, Vec3, EPSILON};

/// A capsule: all points within distance `radius` of the axis segment
/// `[p0, p1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    pub p0: Vec3,
    pub p1: Vec3,
    pub radius: f64,
}

impl Segment {
    #[inline]
    pub fn new(p0: Vec3, p1: Vec3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "segment radius must be non-negative");
        Segment { p0, p1, radius }
    }

    /// Degenerate capsule (a ball) at a point.
    #[inline]
    pub fn ball(c: Vec3, radius: f64) -> Self {
        Segment::new(c, c, radius)
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.p0 + self.p1) * 0.5
    }

    #[inline]
    pub fn axis_length(&self) -> f64 {
        self.p0.distance(self.p1)
    }

    /// Tight axis-aligned bounding box of the capsule surface.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::new(self.p0, self.p1).inflate(self.radius)
    }

    /// Exact minimum distance between the two capsule *surfaces*
    /// (0 if they overlap).
    #[inline]
    pub fn distance(&self, o: &Segment) -> f64 {
        (self.axis_distance(o) - self.radius - o.radius).max(0.0)
    }

    /// True iff the capsule surfaces come within `eps` of each other —
    /// the synapse-candidate predicate of the TOUCH distance join.
    #[inline]
    pub fn within_distance(&self, o: &Segment, eps: f64) -> bool {
        // Compare squared axis distance against the squared inflated sum to
        // avoid the square root on the hot join path.
        let reach = self.radius + o.radius + eps;
        self.axis_distance_sq(o) <= reach * reach
    }

    /// Minimum distance between the two axis segments.
    #[inline]
    pub fn axis_distance(&self, o: &Segment) -> f64 {
        self.axis_distance_sq(o).sqrt()
    }

    /// Squared minimum distance between the two axis segments
    /// (Lumelsky / Ericson closest-point-of-two-segments algorithm).
    pub fn axis_distance_sq(&self, o: &Segment) -> f64 {
        let d1 = self.p1 - self.p0; // direction of S1
        let d2 = o.p1 - o.p0; // direction of S2
        let r = self.p0 - o.p0;
        let a = d1.norm_sq();
        let e = d2.norm_sq();
        let f = d2.dot(r);

        let (s, t);
        if a <= EPSILON && e <= EPSILON {
            // Both segments are points.
            return r.norm_sq();
        }
        if a <= EPSILON {
            // First segment is a point.
            s = 0.0;
            t = (f / e).clamp(0.0, 1.0);
        } else {
            let c = d1.dot(r);
            if e <= EPSILON {
                // Second segment is a point.
                t = 0.0;
                s = (-c / a).clamp(0.0, 1.0);
            } else {
                let b = d1.dot(d2);
                let denom = a * e - b * b;
                let mut s_ = if denom > EPSILON {
                    ((b * f - c * e) / denom).clamp(0.0, 1.0)
                } else {
                    // Parallel segments: pick an arbitrary s, refine t below.
                    0.0
                };
                let mut t_ = (b * s_ + f) / e;
                if t_ < 0.0 {
                    t_ = 0.0;
                    s_ = (-c / a).clamp(0.0, 1.0);
                } else if t_ > 1.0 {
                    t_ = 1.0;
                    s_ = ((b - c) / a).clamp(0.0, 1.0);
                }
                s = s_;
                t = t_;
            }
        }
        let c1 = self.p0 + d1 * s;
        let c2 = o.p0 + d2 * t;
        c1.distance_sq(c2)
    }

    /// Minimum distance from a point to the axis segment.
    pub fn axis_distance_to_point(&self, p: Vec3) -> f64 {
        let d = self.p1 - self.p0;
        let l2 = d.norm_sq();
        if l2 <= EPSILON {
            return self.p0.distance(p);
        }
        let t = ((p - self.p0).dot(d) / l2).clamp(0.0, 1.0);
        (self.p0 + d * t).distance(p)
    }

    /// Minimum distance from a point to the capsule surface (0 if inside).
    #[inline]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        (self.axis_distance_to_point(p) - self.radius).max(0.0)
    }

    /// Conservative capsule-vs-box test used as the refinement step of
    /// range queries: true iff the capsule intersects `q`.
    ///
    /// Exact for the axis (segment-to-box distance ≤ radius); computed by
    /// minimising the distance from the axis to the box with a ternary
    /// search over the axis parameter (the distance function is convex
    /// in the parameter).
    pub fn intersects_aabb(&self, q: &Aabb) -> bool {
        if !self.aabb().intersects(q) {
            return false;
        }
        // Quick accept: either endpoint close enough.
        if q.min_distance_to_point(self.p0) <= self.radius
            || q.min_distance_to_point(self.p1) <= self.radius
        {
            return true;
        }
        // dist(t) = distance from point p0 + t*(p1-p0) to box; convex in t.
        let d = self.p1 - self.p0;
        let f = |t: f64| q.min_distance_to_point(self.p0 + d * t);
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..64 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if f(m1) <= f(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        f((lo + hi) * 0.5) <= self.radius + EPSILON
    }

    /// True when coordinates are finite and the radius is a sane
    /// non-negative number.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.p0.is_finite() && self.p1.is_finite() && self.radius.is_finite() && self.radius >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(a: (f64, f64, f64), b: (f64, f64, f64), r: f64) -> Segment {
        Segment::new(Vec3::new(a.0, a.1, a.2), Vec3::new(b.0, b.1, b.2), r)
    }

    #[test]
    fn aabb_covers_capsule() {
        let s = seg((0.0, 0.0, 0.0), (2.0, 0.0, 0.0), 0.5);
        let bb = s.aabb();
        assert_eq!(bb.lo, Vec3::new(-0.5, -0.5, -0.5));
        assert_eq!(bb.hi, Vec3::new(2.5, 0.5, 0.5));
    }

    #[test]
    fn parallel_segments_distance() {
        let a = seg((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), 0.0);
        let b = seg((0.0, 2.0, 0.0), (1.0, 2.0, 0.0), 0.0);
        assert!((a.axis_distance(&b) - 2.0).abs() < 1e-12);
        // Offset parallel: closest approach at segment ends.
        let c = seg((3.0, 2.0, 0.0), (5.0, 2.0, 0.0), 0.0);
        assert!((a.axis_distance(&c) - (4.0f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn crossing_segments_touch() {
        let a = seg((-1.0, 0.0, 0.0), (1.0, 0.0, 0.0), 0.0);
        let b = seg((0.0, -1.0, 0.0), (0.0, 1.0, 0.0), 0.0);
        assert!(a.axis_distance(&b) < 1e-12);
        // Skew lines: vertical separation 3.
        let c = seg((0.0, -1.0, 3.0), (0.0, 1.0, 3.0), 0.0);
        assert!((a.axis_distance(&c) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_point_segments() {
        let p = Segment::ball(Vec3::new(1.0, 1.0, 1.0), 0.0);
        let q = Segment::ball(Vec3::new(4.0, 5.0, 1.0), 0.0);
        assert!((p.axis_distance(&q) - 5.0).abs() < 1e-12);
        let s = seg((0.0, 0.0, 0.0), (10.0, 0.0, 0.0), 0.0);
        assert!((p.axis_distance(&s) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((s.axis_distance(&p) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn surface_distance_subtracts_radii() {
        let a = seg((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), 0.5);
        let b = seg((0.0, 3.0, 0.0), (1.0, 3.0, 0.0), 0.5);
        assert!((a.distance(&b) - 2.0).abs() < 1e-12);
        assert!(a.within_distance(&b, 2.0));
        assert!(!a.within_distance(&b, 1.99));
        // Overlapping capsules have distance 0.
        let c = seg((0.5, 0.2, 0.0), (0.5, 1.0, 0.0), 0.5);
        assert_eq!(a.distance(&c), 0.0);
    }

    #[test]
    fn point_distances() {
        let s = seg((0.0, 0.0, 0.0), (10.0, 0.0, 0.0), 1.0);
        assert_eq!(s.axis_distance_to_point(Vec3::new(5.0, 3.0, 0.0)), 3.0);
        assert_eq!(s.distance_to_point(Vec3::new(5.0, 3.0, 0.0)), 2.0);
        assert_eq!(s.distance_to_point(Vec3::new(5.0, 0.5, 0.0)), 0.0); // inside
        assert_eq!(s.axis_distance_to_point(Vec3::new(-3.0, 4.0, 0.0)), 5.0);
    }

    #[test]
    fn capsule_box_intersection() {
        let q = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        // Axis passes through the box.
        assert!(seg((-1.0, 0.5, 0.5), (2.0, 0.5, 0.5), 0.01).intersects_aabb(&q));
        // Axis misses, but radius reaches.
        assert!(seg((-1.0, 1.4, 0.5), (2.0, 1.4, 0.5), 0.5).intersects_aabb(&q));
        // Radius too small to reach.
        assert!(!seg((-1.0, 1.6, 0.5), (2.0, 1.6, 0.5), 0.5).intersects_aabb(&q));
        // Diagonal near-corner case: closest approach mid-segment.
        assert!(seg((2.0, 0.0, 0.5), (0.0, 2.0, 0.5), 0.45).intersects_aabb(&q));
        assert!(!seg((2.4, 0.0, 0.5), (0.0, 2.4, 0.5), 0.1).intersects_aabb(&q));
    }

    #[test]
    fn validity() {
        assert!(seg((0.0, 0.0, 0.0), (1.0, 0.0, 0.0), 0.1).is_valid());
        let bad = Segment { p0: Vec3::new(f64::NAN, 0.0, 0.0), p1: Vec3::ZERO, radius: 0.1 };
        assert!(!bad.is_valid());
        let neg = Segment { p0: Vec3::ZERO, p1: Vec3::ONE, radius: -1.0 };
        assert!(!neg.is_valid());
    }

    #[test]
    fn distance_symmetry_samples() {
        let cases = [
            (
                seg((0.0, 0.0, 0.0), (1.0, 2.0, 3.0), 0.2),
                seg((4.0, -1.0, 0.5), (2.0, 2.0, 2.0), 0.3),
            ),
            (
                seg((0.0, 0.0, 0.0), (0.0, 0.0, 0.0), 0.1),
                seg((1.0, 1.0, 1.0), (2.0, 2.0, 2.0), 0.1),
            ),
            (
                seg((-5.0, 0.0, 0.0), (5.0, 0.0, 0.0), 1.0),
                seg((0.0, -5.0, 2.0), (0.0, 5.0, 2.0), 1.0),
            ),
        ];
        for (a, b) in cases {
            assert!((a.axis_distance(&b) - b.axis_distance(&a)).abs() < 1e-9);
        }
    }
}
