//! Uniform-grid coordinate mapping shared by PBSM, FLAT's neighborhood
//! computation and the workload generators.

use crate::{Aabb, Vec3};

/// Maps continuous space onto an `nx × ny × nz` lattice of equal cells.
#[derive(Debug, Clone)]
pub struct GridIndexer {
    bounds: Aabb,
    dims: [usize; 3],
    cell: Vec3,
}

impl GridIndexer {
    /// Grid over `bounds` with the given number of cells per axis (each at
    /// least 1). Panics on empty bounds.
    pub fn new(bounds: Aabb, dims: [usize; 3]) -> Self {
        assert!(!bounds.is_empty(), "GridIndexer requires non-empty bounds");
        let dims = [dims[0].max(1), dims[1].max(1), dims[2].max(1)];
        let e = bounds.extent();
        let cell = Vec3::new(e.x / dims[0] as f64, e.y / dims[1] as f64, e.z / dims[2] as f64);
        GridIndexer { bounds, dims, cell }
    }

    /// Grid whose cells have edge length approximately `cell_size`.
    pub fn with_cell_size(bounds: Aabb, cell_size: f64) -> Self {
        assert!(cell_size > 0.0);
        let e = bounds.extent();
        let dims = [
            ((e.x / cell_size).ceil() as usize).max(1),
            ((e.y / cell_size).ceil() as usize).max(1),
            ((e.z / cell_size).ceil() as usize).max(1),
        ];
        Self::new(bounds, dims)
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    pub fn is_empty(&self) -> bool {
        false // a grid always has at least one cell
    }

    /// Cell coordinates of a point (clamped into range).
    pub fn cell_of(&self, p: Vec3) -> [usize; 3] {
        let mut c = [0usize; 3];
        for (a, slot) in c.iter_mut().enumerate() {
            let rel = if self.cell.axis(a) > 0.0 {
                ((p.axis(a) - self.bounds.lo.axis(a)) / self.cell.axis(a)).floor()
            } else {
                0.0
            };
            *slot = (rel.max(0.0) as usize).min(self.dims[a] - 1);
        }
        c
    }

    /// Linearised cell index (x-fastest layout).
    pub fn linear(&self, c: [usize; 3]) -> usize {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Inverse of [`Self::linear`].
    pub fn delinear(&self, i: usize) -> [usize; 3] {
        let x = i % self.dims[0];
        let y = (i / self.dims[0]) % self.dims[1];
        let z = i / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Inclusive range of cell coordinates covered by a box (clamped).
    pub fn cell_range(&self, b: &Aabb) -> ([usize; 3], [usize; 3]) {
        (self.cell_of(b.lo), self.cell_of(b.hi))
    }

    /// Geometric bounds of a cell.
    pub fn cell_bounds(&self, c: [usize; 3]) -> Aabb {
        let lo = Vec3::new(
            self.bounds.lo.x + c[0] as f64 * self.cell.x,
            self.bounds.lo.y + c[1] as f64 * self.cell.y,
            self.bounds.lo.z + c[2] as f64 * self.cell.z,
        );
        Aabb { lo, hi: lo + self.cell }
    }

    /// Visit every linear cell index overlapped by `b`.
    pub fn for_each_cell_in<F: FnMut(usize)>(&self, b: &Aabb, mut f: F) {
        let (lo, hi) = self.cell_range(b);
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    f(self.linear([x, y, z]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridIndexer {
        GridIndexer::new(Aabb::new(Vec3::ZERO, Vec3::new(10.0, 20.0, 30.0)), [10, 10, 10])
    }

    #[test]
    fn cell_lookup_and_clamping() {
        let g = grid();
        assert_eq!(g.cell_of(Vec3::new(0.5, 0.5, 0.5)), [0, 0, 0]);
        assert_eq!(g.cell_of(Vec3::new(9.99, 19.99, 29.99)), [9, 9, 9]);
        // Exactly on the upper boundary clamps to the last cell.
        assert_eq!(g.cell_of(Vec3::new(10.0, 20.0, 30.0)), [9, 9, 9]);
        // Outside points clamp.
        assert_eq!(g.cell_of(Vec3::new(-5.0, 100.0, 15.0)), [0, 9, 5]);
    }

    #[test]
    fn linearisation_roundtrip() {
        let g = grid();
        for i in 0..g.len() {
            assert_eq!(g.linear(g.delinear(i)), i);
        }
        assert_eq!(g.len(), 1000);
    }

    #[test]
    fn cell_bounds_tile_the_domain() {
        let g = GridIndexer::new(Aabb::new(Vec3::ZERO, Vec3::splat(8.0)), [2, 2, 2]);
        let mut vol = 0.0;
        for i in 0..g.len() {
            vol += g.cell_bounds(g.delinear(i)).volume();
        }
        assert!((vol - 512.0).abs() < 1e-9);
        // First cell starts at the domain corner.
        assert_eq!(g.cell_bounds([0, 0, 0]).lo, Vec3::ZERO);
        assert_eq!(g.cell_bounds([1, 1, 1]).hi, Vec3::splat(8.0));
    }

    #[test]
    fn range_iteration_covers_query() {
        let g = grid();
        let q = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(2.5, 3.5, 4.5));
        let mut cells = Vec::new();
        g.for_each_cell_in(&q, |i| cells.push(i));
        // x: cells 0..=2 (3), y: 0..=1 (2), z: 0..=1 (2) -> 12 cells
        assert_eq!(cells.len(), 12);
        // All covered cells intersect the query box.
        for i in &cells {
            assert!(g.cell_bounds(g.delinear(*i)).intersects(&q));
        }
    }

    #[test]
    fn with_cell_size_resolution() {
        let g = GridIndexer::with_cell_size(Aabb::new(Vec3::ZERO, Vec3::splat(100.0)), 10.0);
        assert_eq!(g.dims(), [10, 10, 10]);
        let g2 = GridIndexer::with_cell_size(Aabb::new(Vec3::ZERO, Vec3::splat(95.0)), 10.0);
        assert_eq!(g2.dims(), [10, 10, 10]); // ceil
    }

    #[test]
    fn degenerate_flat_domain() {
        let g = GridIndexer::new(Aabb::new(Vec3::ZERO, Vec3::new(10.0, 10.0, 0.0)), [4, 4, 4]);
        // Zero-extent axis: all points land in plane cell 0.
        assert_eq!(g.cell_of(Vec3::new(5.0, 5.0, 0.0))[2], 0);
    }
}
