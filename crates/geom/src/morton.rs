//! 3-D Morton (Z-order) codes.
//!
//! Morton order is the cheaper of the two space-filling curves in this
//! crate; it is used for fast approximate spatial sorting (e.g. PBSM tile
//! ordering) where Hilbert's better locality is not worth its cost.

/// Spread the low 21 bits of `v` so that bits land at positions 0,3,6,…
/// (the classic "part1by2" bit trick).
#[inline]
fn part1by2(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`].
#[inline]
fn compact1by2(x: u64) -> u32 {
    let mut x = x & 0x1249249249249249;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00f;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ff;
    x = (x ^ (x >> 16)) & 0x1f00000000ffff;
    x = (x ^ (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Interleave three 21-bit coordinates into a 63-bit Morton code.
///
/// Coordinates above `2^21 - 1` are truncated to 21 bits (callers quantise
/// into this range first; see [`crate::GridIndexer`]).
#[inline]
pub fn morton_encode3(x: u32, y: u32, z: u32) -> u64 {
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Recover the three 21-bit coordinates of a Morton code.
#[inline]
pub fn morton_decode3(m: u64) -> (u32, u32, u32) {
    (compact1by2(m), compact1by2(m >> 1), compact1by2(m >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    assert_eq!(morton_decode3(morton_encode3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn roundtrip_extremes() {
        let max = (1u32 << 21) - 1;
        for &(x, y, z) in &[
            (0, 0, 0),
            (max, max, max),
            (max, 0, 0),
            (0, max, 0),
            (0, 0, max),
            (123456, 654321, 999999),
        ] {
            assert_eq!(morton_decode3(morton_encode3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn ordering_is_z_shaped() {
        // Within a 2x2x2 cube the Morton order is the canonical Z pattern:
        // (0,0,0) < (1,0,0) < (0,1,0) < (1,1,0) < (0,0,1) < ...
        let order = [
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (1, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];
        let codes: Vec<u64> = order.iter().map(|&(x, y, z)| morton_encode3(x, y, z)).collect();
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(codes[0], 0);
        assert_eq!(codes[7], 7);
    }

    #[test]
    fn truncates_to_21_bits() {
        let max = (1u32 << 21) - 1;
        assert_eq!(morton_encode3(u32::MAX, 0, 0), morton_encode3(max, 0, 0));
    }

    #[test]
    fn codes_are_unique_on_a_grid() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                for z in 0..16u32 {
                    assert!(seen.insert(morton_encode3(x, y, z)));
                }
            }
        }
        assert_eq!(seen.len(), 16 * 16 * 16);
    }
}
