//! Scoped-thread data parallelism for offline workloads.
//!
//! Several subsystems fan independent work units out over a fixed number
//! of worker threads: the TOUCH join probes each B-object independently,
//! and the sharded query executor runs one backend index per space
//! partition. Both need the same primitive — split `0..n` into contiguous
//! chunks, run one scoped thread per chunk, collect results in chunk
//! order — and the same semantics for the `threads` knob (clamped to at
//! least 1, never more workers than items). [`Executor`] is that
//! primitive, so chunk sizing and clamping live in exactly one place.
//!
//! `std::thread::scope` keeps the API dependency-free and lets workers
//! borrow from the caller's stack; results are joined in spawn order, so
//! output order (and therefore every merge built on it) is deterministic
//! regardless of which worker finishes first.
//!
//! ```
//! use neurospatial_geom::Executor;
//!
//! let data = [1u64, 2, 3, 4, 5, 6, 7];
//! let partial_sums = Executor::new(3).map_chunks(data.len(), |range| {
//!     data[range].iter().sum::<u64>()
//! });
//! assert_eq!(partial_sums.iter().sum::<u64>(), 28);
//! ```

use std::ops::Range;

/// A fixed-width scoped-thread worker pool over contiguous index chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor { threads: 1 }
    }
}

impl Executor {
    /// An executor with `threads` workers; 0 is clamped to 1
    /// (sequential), and requests beyond the machine's available
    /// parallelism are capped to it — the workloads this executor runs
    /// are CPU-bound, so oversubscribing cores only adds scheduler
    /// overhead. The hardware probe is cached process-wide:
    /// `available_parallelism` reads procfs/cgroup state (and
    /// allocates), which would otherwise put syscalls and heap traffic
    /// on every allocation-free join/query path that constructs an
    /// executor.
    pub fn new(threads: usize) -> Self {
        static HARDWARE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let hardware = *HARDWARE.get_or_init(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(usize::MAX)
        });
        Executor { threads: threads.max(1).min(hardware) }
    }

    /// An executor with exactly `threads` workers (0 clamped to 1),
    /// deliberately *not* capped to available parallelism. For
    /// I/O-blocked workloads — connection pools, open-loop load
    /// generators — the workers spend most of their time parked in
    /// syscalls, so oversubscribing cores is the point: a single-core
    /// machine can still drive N concurrent connections.
    pub fn io_bound(threads: usize) -> Self {
        Executor { threads: threads.max(1) }
    }

    /// The effective worker count (>= 1, <= available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How `n` items split into chunks: `(workers, chunk_len)` with
    /// `workers <= threads`, `workers <= n`, and
    /// `chunk_len * workers >= n`. `(0, 0)` when `n == 0`.
    pub fn chunking(&self, n: usize) -> (usize, usize) {
        if n == 0 {
            return (0, 0);
        }
        let workers = self.threads.min(n);
        (workers, n.div_ceil(workers))
    }

    /// Split `0..n` into at most [`threads`](Self::threads) contiguous
    /// chunks, run `f` on each chunk (on scoped worker threads when more
    /// than one chunk exists), and return the per-chunk results in chunk
    /// order. Sequential executors and single-chunk workloads run `f`
    /// inline with zero spawn overhead.
    pub fn map_chunks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let (workers, chunk) = self.chunking(n);
        if workers == 0 {
            return Vec::new();
        }
        if workers == 1 {
            return vec![f(0..n)];
        }
        let f = &f;
        let mut out = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for t in 0..workers {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move || f(lo..hi)));
            }
            for h in handles {
                out.push(h.join().expect("parallel worker panicked"));
            }
        });
        out
    }

    /// Like [`map_chunks`](Self::map_chunks), but hands chunk `t` exclusive
    /// mutable access to `states[t]` — the pattern behind allocation-free
    /// fan-out: each worker accumulates into its own reusable scratch
    /// (descent stacks, pair buffers, counters) and the caller merges the
    /// states afterwards in chunk order, which keeps the merge
    /// deterministic. Nothing is returned and, on the sequential path
    /// (one chunk), nothing is allocated — `f` runs inline on
    /// `states[0]`, so a steady-state caller with warm buffers performs
    /// zero heap allocations.
    ///
    /// `states` must hold at least [`chunking`](Self::chunking)`(n).0`
    /// entries; chunk boundaries are identical to `map_chunks`.
    ///
    /// # Panics
    /// If `states` is shorter than the number of chunks.
    pub fn for_each_chunk<S, F>(&self, n: usize, states: &mut [S], f: F)
    where
        S: Send,
        F: Fn(Range<usize>, &mut S) + Sync,
    {
        let (workers, chunk) = self.chunking(n);
        if workers == 0 {
            return;
        }
        assert!(states.len() >= workers, "need one state per chunk: {} < {workers}", states.len());
        if workers == 1 {
            f(0..n, &mut states[0]);
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for (t, state) in states[..workers].iter_mut().enumerate() {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                scope.spawn(move || f(lo..hi, state));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamp_to_sequential() {
        let e = Executor::new(0);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.map_chunks(5, |r| r.len()), vec![5]);
    }

    #[test]
    fn io_bound_is_not_capped_to_hardware() {
        assert_eq!(Executor::io_bound(0).threads(), 1);
        assert_eq!(Executor::io_bound(64).threads(), 64);
        // Still runs work correctly when oversubscribed.
        let sum: usize = Executor::io_bound(8).map_chunks(100, |r| r.len()).iter().sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        assert!(Executor::new(4).map_chunks(0, |_| 0u32).is_empty());
        assert_eq!(Executor::new(4).chunking(0), (0, 0));
    }

    #[test]
    fn chunks_partition_the_range_in_order() {
        for threads in 1..=9 {
            for n in 0..40 {
                // Struct literal (same module) dodges the hardware cap so
                // the scoped-spawn path is exercised on any machine.
                let ranges = Executor { threads }.map_chunks(n, |r| r);
                // Concatenated chunks reproduce 0..n exactly.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "threads={threads} n={n}");
                    assert!(r.end > r.start, "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= threads.max(1).min(n.max(1)));
            }
        }
    }

    #[test]
    fn never_more_workers_than_items() {
        let (workers, chunk) = Executor { threads: 8 }.chunking(3);
        assert_eq!((workers, chunk), (3, 1));
        assert_eq!(Executor { threads: 8 }.map_chunks(3, |r| r.len()), vec![1, 1, 1]);
    }

    #[test]
    fn requests_are_capped_to_the_hardware() {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(usize::MAX);
        assert!(Executor::new(usize::MAX).threads() <= hw);
        assert_eq!(Executor::new(1).threads(), 1);
    }

    #[test]
    fn for_each_chunk_accumulates_into_states() {
        let data: Vec<u64> = (0..500).collect();
        let seq: u64 = data.iter().sum();
        for threads in [1usize, 2, 5, 11] {
            let e = Executor { threads };
            let (workers, _) = e.chunking(data.len());
            let mut states = vec![0u64; workers];
            e.for_each_chunk(data.len(), &mut states, |r, acc| *acc += data[r].iter().sum::<u64>());
            assert_eq!(states.iter().sum::<u64>(), seq, "threads={threads}");
            // Reuse: states accumulate across calls (they are never reset
            // by the executor — resetting is the caller's policy).
            e.for_each_chunk(data.len(), &mut states, |r, acc| *acc += data[r].iter().sum::<u64>());
            assert_eq!(states.iter().sum::<u64>(), 2 * seq);
        }
    }

    #[test]
    fn for_each_chunk_empty_input_is_a_noop() {
        let mut states: Vec<u32> = Vec::new();
        Executor::new(4).for_each_chunk(0, &mut states, |_, _| panic!("no chunks expected"));
    }

    #[test]
    #[should_panic(expected = "one state per chunk")]
    fn for_each_chunk_rejects_short_state_slices() {
        let mut states = vec![0u32; 1];
        Executor { threads: 4 }.for_each_chunk(100, &mut states, |_, _| {});
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<u64> = (0..1000).collect();
        let seq: u64 = data.iter().sum();
        for threads in [1, 2, 3, 7, 16] {
            let partials =
                Executor { threads }.map_chunks(data.len(), |r| data[r].iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), seq, "threads={threads}");
        }
    }
}
