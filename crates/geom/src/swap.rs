//! Atomic snapshot swap — the epoch/arc-swap primitive on `std::sync`.
//!
//! Live ingest keeps queries running against a *frozen* snapshot while
//! a background task builds its replacement. The handoff needs exactly
//! two properties: readers always see a complete snapshot (never a
//! half-installed one), and installing a new snapshot never blocks on
//! readers that are still traversing the old one. [`Swap`] provides
//! both with nothing but `Mutex<Arc<T>>` plus an epoch counter: readers
//! clone the `Arc` under a lock held for nanoseconds and then traverse
//! lock-free; writers store a new `Arc` and bump the epoch; old
//! snapshots stay alive exactly as long as someone still holds a clone.
//!
//! This is the `std`-only analogue of the `arc-swap` crate — a mutex
//! instead of hazard pointers, which is the right trade here: loads are
//! off the per-object hot path (one per *query*, not one per segment),
//! and the workspace stays dependency-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable shared snapshot with an epoch counter.
///
/// ```
/// use std::sync::Arc;
/// use neurospatial_geom::Swap;
///
/// let s = Swap::new(Arc::new(vec![1, 2, 3]));
/// let reader = s.load();          // cheap Arc clone
/// s.store(Arc::new(vec![4]));     // readers of the old Arc unaffected
/// assert_eq!(*reader, vec![1, 2, 3]);
/// assert_eq!(*s.load(), vec![4]);
/// assert_eq!(s.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct Swap<T> {
    current: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> Swap<T> {
    /// A swap holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        Swap { current: Mutex::new(value), epoch: AtomicU64::new(0) }
    }

    /// The current snapshot (an `Arc` clone; the lock is held only for
    /// the clone). The returned `Arc` stays valid across any number of
    /// subsequent [`store`](Self::store)s.
    pub fn load(&self) -> Arc<T> {
        self.current.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Install `value` as the current snapshot, bump the epoch, and
    /// return the previous snapshot. Readers holding the old `Arc`
    /// finish undisturbed; new loads see `value`.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        let mut cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        let old = std::mem::replace(&mut *cur, value);
        self.epoch.fetch_add(1, Ordering::Release);
        old
    }

    /// Number of [`store`](Self::store)s so far — the generation
    /// counter surfaced in ingest health reports.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_epoch() {
        let s = Swap::new(Arc::new(10u32));
        assert_eq!(s.epoch(), 0);
        assert_eq!(*s.load(), 10);
        let old = s.store(Arc::new(20));
        assert_eq!(*old, 10);
        assert_eq!(*s.load(), 20);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn readers_keep_their_snapshot_across_swaps() {
        let s = Swap::new(Arc::new(vec![1, 2, 3]));
        let held = s.load();
        for gen in 0..5u64 {
            s.store(Arc::new(vec![gen as i32]));
        }
        assert_eq!(*held, vec![1, 2, 3], "old snapshot survives while held");
        assert_eq!(s.epoch(), 5);
    }

    #[test]
    fn concurrent_loads_always_see_a_complete_snapshot() {
        let s = Arc::new(Swap::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|scope| {
            let writer = {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 1..=1000u64 {
                        // Both halves always equal: a torn install would
                        // expose a mismatched pair.
                        s.store(Arc::new((i, i)));
                    }
                })
            };
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        let snap = s.load();
                        assert_eq!(snap.0, snap.1, "snapshot must be atomic");
                    }
                });
            }
            writer.join().expect("writer");
        });
    }
}
