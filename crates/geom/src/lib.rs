//! # neurospatial-geom
//!
//! Geometric foundation of the `neurospatial` workspace: 3-D vectors,
//! axis-aligned bounding boxes, capsule-shaped neuron segments, exact
//! distance computations, the Morton / Hilbert space-filling curves
//! used for spatial ordering by the FLAT index and the prefetchers, and
//! the scoped-thread [`Executor`] shared by every parallel query path.
//!
//! All coordinates are `f64`. The crate is `no_std`-agnostic in spirit but
//! uses `std` for convenience; it has no mandatory dependencies.
//!
//! ## Quick tour
//!
//! ```
//! use neurospatial_geom::{Vec3, Aabb, Segment};
//!
//! let a = Segment::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 0.1);
//! let b = Segment::new(Vec3::new(0.5, 0.15, 0.0), Vec3::new(0.5, 1.0, 0.0), 0.1);
//! // Surface-to-surface distance between two capsules:
//! let d = a.distance(&b);
//! assert!(d == 0.0); // the capsule surfaces overlap
//! assert!(a.aabb().intersects(&b.aabb()));
//! ```

pub mod aabb;
pub mod grid;
pub mod hilbert;
pub mod morton;
pub mod parallel;
pub mod segment;
pub mod swap;
pub mod vec3;

pub use aabb::Aabb;
pub use grid::GridIndexer;
pub use hilbert::{hilbert_d2xyz, hilbert_xyz2d, HilbertSorter};
pub use morton::{morton_decode3, morton_encode3};
pub use parallel::Executor;
pub use segment::Segment;
pub use swap::Swap;
pub use vec3::Vec3;

/// Numerical tolerance used by geometric predicates throughout the
/// workspace. Chosen to be far below any biologically meaningful length
/// (micrometre-scale coordinates) while far above `f64` rounding noise.
pub const EPSILON: f64 = 1e-9;

/// Verdict a streaming sink returns for each candidate object a spatial
/// traversal offers it — the control channel that lets predicates and
/// limits push down *below* the index traversal instead of running as a
/// post-filter over a materialized result set.
///
/// The contract every streaming traversal follows: a candidate whose AABB
/// intersects the query is offered to the sink exactly once (replicated
/// entries are de-duplicated first); [`Flow::Emit`] counts it as a result
/// and continues, [`Flow::Skip`] rejects it (filtered out, not counted)
/// and continues, [`Flow::Last`] counts it as the final result and stops
/// the traversal immediately — the early exit a pushed-down `LIMIT`
/// compiles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Count the candidate as a result and keep traversing.
    Emit,
    /// Reject the candidate (predicate miss) and keep traversing.
    Skip,
    /// Count the candidate as the final result and stop the traversal.
    Last,
}
