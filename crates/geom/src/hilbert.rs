//! 3-D Hilbert curve (Skilling's transpose algorithm).
//!
//! FLAT packs objects into pages in Hilbert order because consecutive
//! Hilbert codes are always spatially adjacent — that is what makes page
//! neighborhoods small — and the Hilbert *prefetching* baseline of SCOUT
//! (after Park & Kim) prefetches pages adjacent in this order.
//!
//! The implementation follows John Skilling, "Programming the Hilbert
//! curve" (AIP Conf. Proc. 707, 2004): coordinates are transformed in
//! place between Cartesian ("axes") form and the transposed Hilbert index
//! form.

use crate::{Aabb, Vec3};

const DIMS: usize = 3;

/// Number of bits of precision per axis used by [`HilbertSorter`].
pub const HILBERT_BITS: u32 = 21;

/// Convert Cartesian coordinates (each `bits` wide) into a Hilbert
/// distance along the 3-D curve of order `bits`.
///
/// The result fits in `3 * bits` bits (≤ 63 for `bits ≤ 21`).
pub fn hilbert_xyz2d(bits: u32, x: u32, y: u32, z: u32) -> u64 {
    debug_assert!((1..=HILBERT_BITS).contains(&bits));
    let mut a = [x, y, z];
    axes_to_transpose(&mut a, bits);
    interleave_transposed(&a, bits)
}

/// Inverse of [`hilbert_xyz2d`].
pub fn hilbert_d2xyz(bits: u32, d: u64) -> (u32, u32, u32) {
    debug_assert!((1..=HILBERT_BITS).contains(&bits));
    let mut a = deinterleave_to_transposed(d, bits);
    transpose_to_axes(&mut a, bits);
    (a[0], a[1], a[2])
}

/// In-place Gray-code transform: Cartesian axes → transposed Hilbert form.
fn axes_to_transpose(x: &mut [u32; DIMS], bits: u32) {
    let m = 1u32 << (bits - 1);
    // Inverse undo excess work
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..DIMS {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..DIMS {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[DIMS - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// In-place inverse of [`axes_to_transpose`].
fn transpose_to_axes(x: &mut [u32; DIMS], bits: u32) {
    let n = 2u32.wrapping_shl(bits - 1); // 2^bits
                                         // Gray decode by H ^ (H/2)
    let mut t = x[DIMS - 1] >> 1;
    for i in (1..DIMS).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q = 2u32;
    while q != n {
        let p = q - 1;
        for i in (0..DIMS).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack the transposed representation into a single integer: bit `b` of
/// axis `i` becomes bit `b*3 + (2-i)` of the output, so the most
/// significant interleaved bits come from the high bits of axis 0.
fn interleave_transposed(x: &[u32; DIMS], bits: u32) -> u64 {
    let mut d = 0u64;
    for b in (0..bits).rev() {
        for (i, &v) in x.iter().enumerate() {
            d = (d << 1) | (((v >> b) & 1) as u64);
            let _ = i;
        }
    }
    d
}

/// Inverse of [`interleave_transposed`].
fn deinterleave_to_transposed(d: u64, bits: u32) -> [u32; DIMS] {
    let mut x = [0u32; DIMS];
    let total = bits * DIMS as u32;
    for pos in 0..total {
        let bit = (d >> (total - 1 - pos)) & 1;
        let axis = (pos as usize) % DIMS;
        x[axis] = (x[axis] << 1) | bit as u32;
    }
    x
}

/// Quantises points of a bounded region onto the Hilbert curve so that
/// arbitrary `f64` geometry can be sorted in Hilbert order.
#[derive(Debug, Clone)]
pub struct HilbertSorter {
    bounds: Aabb,
    scale: Vec3,
    bits: u32,
}

impl HilbertSorter {
    /// Sorter over `bounds` with the default 21-bit resolution per axis.
    pub fn new(bounds: Aabb) -> Self {
        Self::with_bits(bounds, HILBERT_BITS)
    }

    /// Sorter with an explicit per-axis bit resolution (1..=21).
    pub fn with_bits(bounds: Aabb, bits: u32) -> Self {
        assert!(!bounds.is_empty(), "HilbertSorter requires non-empty bounds");
        assert!((1..=HILBERT_BITS).contains(&bits));
        let e = bounds.extent();
        let side = ((1u64 << bits) - 1) as f64;
        // Degenerate axes (zero extent) map everything to cell 0.
        let scale = Vec3::new(
            if e.x > 0.0 { side / e.x } else { 0.0 },
            if e.y > 0.0 { side / e.y } else { 0.0 },
            if e.z > 0.0 { side / e.z } else { 0.0 },
        );
        HilbertSorter { bounds, scale, bits }
    }

    /// Hilbert key of a point (points outside the bounds are clamped).
    pub fn key(&self, p: Vec3) -> u64 {
        let q = p.max(self.bounds.lo).min(self.bounds.hi) - self.bounds.lo;
        let max = (1u64 << self.bits) - 1;
        let xi = ((q.x * self.scale.x) as u64).min(max) as u32;
        let yi = ((q.y * self.scale.y) as u64).min(max) as u32;
        let zi = ((q.z * self.scale.z) as u64).min(max) as u32;
        hilbert_xyz2d(self.bits, xi, yi, zi)
    }

    /// The bounds this sorter quantises into.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exhaustive_small_order() {
        for bits in 1..=4u32 {
            let n = 1u32 << bits;
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        let d = hilbert_xyz2d(bits, x, y, z);
                        assert_eq!(hilbert_d2xyz(bits, d), (x, y, z), "bits={bits}");
                    }
                }
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_small_order() {
        use std::collections::HashSet;
        let bits = 3;
        let n = 1u64 << bits;
        let total = n * n * n;
        let mut seen = HashSet::new();
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                for z in 0..n as u32 {
                    let d = hilbert_xyz2d(bits, x, y, z);
                    assert!(d < total);
                    assert!(seen.insert(d));
                }
            }
        }
        assert_eq!(seen.len(), total as usize);
    }

    #[test]
    fn consecutive_codes_are_spatially_adjacent() {
        // The defining property of the Hilbert curve: d and d+1 map to
        // lattice points exactly one unit-step apart.
        for bits in 1..=4u32 {
            let n = 1u64 << bits;
            let total = n * n * n;
            for d in 0..total - 1 {
                let (x0, y0, z0) = hilbert_d2xyz(bits, d);
                let (x1, y1, z1) = hilbert_d2xyz(bits, d + 1);
                let step = (x0 as i64 - x1 as i64).abs()
                    + (y0 as i64 - y1 as i64).abs()
                    + (z0 as i64 - z1 as i64).abs();
                assert_eq!(step, 1, "bits={bits} d={d}");
            }
        }
    }

    #[test]
    fn high_order_roundtrip_samples() {
        let bits = HILBERT_BITS;
        let max = (1u32 << bits) - 1;
        for &(x, y, z) in
            &[(0, 0, 0), (max, max, max), (max, 0, max), (1 << 20, 12345, 999_999), (42, 42, 42)]
        {
            let d = hilbert_xyz2d(bits, x, y, z);
            assert_eq!(hilbert_d2xyz(bits, d), (x, y, z));
        }
    }

    #[test]
    fn sorter_clamps_and_orders() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let s = HilbertSorter::new(bounds);
        // Outside points clamp to the boundary cell.
        assert_eq!(s.key(Vec3::splat(-50.0)), s.key(Vec3::ZERO));
        assert_eq!(s.key(Vec3::splat(1e9)), s.key(Vec3::splat(100.0)));
        // Nearby points get nearby keys far more often than far points; we
        // check the weaker deterministic property that identical points map
        // to identical keys.
        assert_eq!(s.key(Vec3::splat(33.3)), s.key(Vec3::splat(33.3)));
    }

    #[test]
    fn sorter_handles_degenerate_axes() {
        // A planar dataset (zero z-extent) must not divide by zero.
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(10.0, 10.0, 0.0));
        let s = HilbertSorter::new(bounds);
        let a = s.key(Vec3::new(1.0, 1.0, 0.0));
        let b = s.key(Vec3::new(9.0, 9.0, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn locality_beats_random_shuffle() {
        // Average distance between consecutive points in Hilbert order
        // should be much smaller than between random consecutive pairs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let s = HilbertSorter::new(bounds);
        let pts: Vec<Vec3> = (0..2000)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| s.key(*p));
        let avg = |v: &[Vec3]| {
            v.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (v.len() - 1) as f64
        };
        assert!(avg(&sorted) < avg(&pts) * 0.5, "hilbert order should improve locality");
    }
}
