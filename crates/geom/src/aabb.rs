//! Axis-aligned bounding boxes — the filter geometry used by every index
//! and join algorithm in the workspace.

use crate::Vec3;
use std::fmt;

/// A closed axis-aligned box `[lo, hi]` in 3-D.
///
/// Invariant: `lo[a] <= hi[a]` on every axis for every box produced by the
/// constructors in this module. An *empty* box (`Aabb::EMPTY`) deliberately
/// violates this with `lo = +∞, hi = -∞` so it acts as the identity of
/// [`Aabb::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Aabb {
    /// The empty box: identity of `union`, intersects nothing.
    pub const EMPTY: Aabb = Aabb {
        lo: Vec3 { x: f64::INFINITY, y: f64::INFINITY, z: f64::INFINITY },
        hi: Vec3 { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY, z: f64::NEG_INFINITY },
    };

    /// Box from two corner points (re-ordered per axis, so argument order
    /// does not matter).
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb { lo: a.min(b), hi: a.max(b) }
    }

    /// Box spanning exactly one point.
    #[inline]
    pub fn point(p: Vec3) -> Self {
        Aabb { lo: p, hi: p }
    }

    /// Cube of half-extent `r` centred at `c`.
    #[inline]
    pub fn cube(c: Vec3, r: f64) -> Self {
        debug_assert!(r >= 0.0);
        Aabb { lo: c - Vec3::splat(r), hi: c + Vec3::splat(r) }
    }

    /// Smallest box containing all points of an iterator; `EMPTY` if the
    /// iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Self {
        pts.into_iter().fold(Aabb::EMPTY, |acc, p| acc.union(&Aabb::point(p)))
    }

    /// True if the box contains no points (`lo > hi` on some axis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// Per-axis extent; non-negative for non-empty boxes.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Surface area — the R*-tree split heuristic minimises this ("margin"
    /// in the R* paper uses the sum of extents; we expose both).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Sum of edge lengths (the R* "margin").
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x + e.y + e.z
    }

    /// Closed-interval intersection test (boxes sharing a face intersect).
    #[inline]
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.lo.x <= o.hi.x
            && o.lo.x <= self.hi.x
            && self.lo.y <= o.hi.y
            && o.lo.y <= self.hi.y
            && self.lo.z <= o.hi.z
            && o.lo.z <= self.hi.z
    }

    /// True if `self` fully contains `o`.
    #[inline]
    pub fn contains(&self, o: &Aabb) -> bool {
        !o.is_empty()
            && self.lo.x <= o.lo.x
            && self.lo.y <= o.lo.y
            && self.lo.z <= o.lo.z
            && self.hi.x >= o.hi.x
            && self.hi.y >= o.hi.y
            && self.hi.z >= o.hi.z
    }

    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.lo.x <= p.x
            && p.x <= self.hi.x
            && self.lo.y <= p.y
            && p.y <= self.hi.y
            && self.lo.z <= p.z
            && p.z <= self.hi.z
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Geometric intersection; `EMPTY`-like (inverted) box if disjoint.
    #[inline]
    pub fn intersection(&self, o: &Aabb) -> Aabb {
        Aabb { lo: self.lo.max(o.lo), hi: self.hi.min(o.hi) }
    }

    /// Volume of the overlap region (0 if disjoint) — the quantity the
    /// R-Tree literature calls *overlap* and FLAT is designed to avoid.
    #[inline]
    pub fn overlap_volume(&self, o: &Aabb) -> f64 {
        self.intersection(o).volume()
    }

    /// Box grown by `d` on every side (shrunk if `d < 0`). ε-inflation is
    /// the standard filter step for distance joins and FLAT neighborhood
    /// computation.
    #[inline]
    pub fn inflate(&self, d: f64) -> Aabb {
        Aabb { lo: self.lo - Vec3::splat(d), hi: self.hi + Vec3::splat(d) }
    }

    /// Increase in volume if `o` were unioned in (R-Tree `ChooseSubtree`
    /// heuristic).
    #[inline]
    pub fn enlargement(&self, o: &Aabb) -> f64 {
        self.union(o).volume() - self.volume()
    }

    /// Minimum distance between the two boxes (0 if they intersect).
    #[inline]
    pub fn min_distance(&self, o: &Aabb) -> f64 {
        self.min_distance_sq(o).sqrt()
    }

    /// Squared minimum distance between the two boxes.
    #[inline]
    pub fn min_distance_sq(&self, o: &Aabb) -> f64 {
        let mut d2 = 0.0;
        for a in 0..3 {
            let gap = (o.lo.axis(a) - self.hi.axis(a)).max(self.lo.axis(a) - o.hi.axis(a)).max(0.0);
            d2 += gap * gap;
        }
        d2
    }

    /// Minimum distance from the box to a point (0 if inside).
    #[inline]
    pub fn min_distance_to_point(&self, p: Vec3) -> f64 {
        let c = self.clamp_point(p);
        c.distance(p)
    }

    /// Closest point of the box to `p`.
    #[inline]
    pub fn clamp_point(&self, p: Vec3) -> Vec3 {
        p.max(self.lo).min(self.hi)
    }

    /// Axis with the largest extent — used by KD-style partitioning.
    #[inline]
    pub fn longest_axis(&self) -> usize {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// True when both corners are finite and ordered; generated geometry is
    /// validated with this before insertion into indexes.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite() && !self.is_empty()
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: (f64, f64, f64), hi: (f64, f64, f64)) -> Aabb {
        Aabb::new(Vec3::new(lo.0, lo.1, lo.2), Vec3::new(hi.0, hi.1, hi.2))
    }

    #[test]
    fn construction_reorders_corners() {
        let x = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(0.0, 2.0, 4.0));
        assert_eq!(x.lo, Vec3::new(0.0, -1.0, 4.0));
        assert_eq!(x.hi, Vec3::new(1.0, 2.0, 5.0));
        assert!(x.is_valid());
    }

    #[test]
    fn empty_is_union_identity() {
        let x = b((0.0, 0.0, 0.0), (1.0, 2.0, 3.0));
        assert_eq!(Aabb::EMPTY.union(&x), x);
        assert_eq!(x.union(&Aabb::EMPTY), x);
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.volume(), 0.0);
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
        assert_eq!(Aabb::EMPTY.margin(), 0.0);
    }

    #[test]
    fn volumes_and_areas() {
        let x = b((0.0, 0.0, 0.0), (2.0, 3.0, 4.0));
        assert_eq!(x.volume(), 24.0);
        assert_eq!(x.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        assert_eq!(x.margin(), 9.0);
        assert_eq!(x.center(), Vec3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn intersection_tests() {
        let a = b((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let c = b((0.5, 0.5, 0.5), (2.0, 2.0, 2.0));
        let d = b((1.5, 1.5, 1.5), (2.0, 2.0, 2.0));
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
        assert!(!a.intersects(&d));
        // Face-sharing boxes intersect (closed intervals).
        let e = b((1.0, 0.0, 0.0), (2.0, 1.0, 1.0));
        assert!(a.intersects(&e));
        assert_eq!(a.overlap_volume(&c), 0.125);
        assert_eq!(a.overlap_volume(&d), 0.0);
    }

    #[test]
    fn containment() {
        let outer = b((0.0, 0.0, 0.0), (10.0, 10.0, 10.0));
        let inner = b((1.0, 1.0, 1.0), (2.0, 2.0, 2.0));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(!outer.contains(&Aabb::EMPTY));
        assert!(outer.contains_point(Vec3::new(5.0, 5.0, 5.0)));
        assert!(outer.contains_point(Vec3::new(0.0, 0.0, 0.0))); // boundary
        assert!(!outer.contains_point(Vec3::new(-0.1, 5.0, 5.0)));
    }

    #[test]
    fn inflation_and_enlargement() {
        let a = b((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let g = a.inflate(0.5);
        assert_eq!(g.lo, Vec3::splat(-0.5));
        assert_eq!(g.hi, Vec3::splat(1.5));
        let far = b((5.0, 0.0, 0.0), (6.0, 1.0, 1.0));
        assert!(a.enlargement(&far) > 0.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn distances() {
        let a = b((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let c = b((3.0, 0.0, 0.0), (4.0, 1.0, 1.0));
        assert_eq!(a.min_distance(&c), 2.0);
        assert_eq!(a.min_distance(&a), 0.0);
        // Diagonal separation
        let d = b((2.0, 2.0, 2.0), (3.0, 3.0, 3.0));
        assert!((a.min_distance(&d) - (3.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.min_distance_to_point(Vec3::new(0.5, 0.5, 0.5)), 0.0);
        assert_eq!(a.min_distance_to_point(Vec3::new(2.0, 0.5, 0.5)), 1.0);
    }

    #[test]
    fn longest_axis_and_clamp() {
        let a = b((0.0, 0.0, 0.0), (1.0, 5.0, 2.0));
        assert_eq!(a.longest_axis(), 1);
        assert_eq!(a.clamp_point(Vec3::new(9.0, -3.0, 1.0)), Vec3::new(1.0, 0.0, 1.0));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Vec3::new(0.0, 5.0, -1.0), Vec3::new(2.0, 1.0, 3.0), Vec3::new(-1.0, 2.0, 0.0)];
        let a = Aabb::from_points(pts);
        for p in pts {
            assert!(a.contains_point(p));
        }
        assert_eq!(a.lo, Vec3::new(-1.0, 1.0, -1.0));
        assert_eq!(a.hi, Vec3::new(2.0, 5.0, 3.0));
        assert!(Aabb::from_points(std::iter::empty()).is_empty());
    }
}
