//! 3-D vector type used for all coordinates in the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A point or direction in 3-D space (micrometre-scale coordinates in the
/// neuroscience workloads, but the crate is unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Squared Euclidean distance (avoids the square root on hot paths).
    #[inline]
    pub fn distance_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Unit vector in the same direction; returns `None` for (near-)zero
    /// vectors rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < crate::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Linear interpolation: `self` at `t == 0`, `o` at `t == 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Largest component magnitude (L∞ norm).
    #[inline]
    pub fn max_abs_component(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// True if all components are finite (no NaN/∞) — used to validate
    /// generated geometry before it enters an index.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self, a: usize) -> f64 {
        match a {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis out of range: {a}"),
        }
    }

    /// Mutable access by axis index.
    #[inline]
    pub fn set_axis(&mut self, a: usize, v: f64) {
        match a {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("axis out of range: {a}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, a: usize) -> &f64 {
        match a {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range: {a}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(a / 1.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        // Cross product is perpendicular to both operands.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
        assert_eq!(v.distance_sq(Vec3::ZERO), 25.0);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 0.0, 9.0);
        assert_eq!(v.normalized().unwrap(), Vec3::new(0.0, 0.0, 1.0));
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::splat(1e-12).normalized().is_none());
    }

    #[test]
    fn component_min_max_lerp() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 0.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 0.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Vec3::new(1.5, 2.5, -1.5));
    }

    #[test]
    fn axis_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.axis(0), 1.0);
        assert_eq!(v.axis(1), 2.0);
        assert_eq!(v.axis(2), 3.0);
        assert_eq!(v[2], 3.0);
        v.set_axis(1, 7.0);
        assert_eq!(v.y, 7.0);
        assert_eq!(v.max_abs_component(), 7.0);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn axis_out_of_range_panics() {
        let _ = Vec3::ZERO.axis(3);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
