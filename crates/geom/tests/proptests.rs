//! Property-based tests for the geometric foundation.

use neurospatial_geom::{
    hilbert_d2xyz, hilbert_xyz2d, morton_decode3, morton_encode3, Aabb, GridIndexer, HilbertSorter,
    Segment, Vec3,
};
use proptest::prelude::*;

fn vec3_strategy(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn aabb_strategy(range: f64) -> impl Strategy<Value = Aabb> {
    (vec3_strategy(range), vec3_strategy(range)).prop_map(|(a, b)| Aabb::new(a, b))
}

fn segment_strategy(range: f64) -> impl Strategy<Value = Segment> {
    (vec3_strategy(range), vec3_strategy(range), 0.0..range / 10.0)
        .prop_map(|(a, b, r)| Segment::new(a, b, r))
}

proptest! {
    #[test]
    fn aabb_union_contains_operands(a in aabb_strategy(100.0), b in aabb_strategy(100.0)) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        // Union is commutative.
        prop_assert_eq!(u, b.union(&a));
    }

    #[test]
    fn aabb_intersection_symmetry(a in aabb_strategy(100.0), b in aabb_strategy(100.0)) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        let i = a.intersection(&b);
        if a.intersects(&b) {
            prop_assert!(!i.is_empty());
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
        } else {
            prop_assert!(i.is_empty());
        }
    }

    #[test]
    fn aabb_overlap_volume_bounded(a in aabb_strategy(50.0), b in aabb_strategy(50.0)) {
        let ov = a.overlap_volume(&b);
        prop_assert!(ov >= 0.0);
        prop_assert!(ov <= a.volume() + 1e-9);
        prop_assert!(ov <= b.volume() + 1e-9);
    }

    #[test]
    fn aabb_min_distance_zero_iff_intersecting(a in aabb_strategy(50.0), b in aabb_strategy(50.0)) {
        let d = a.min_distance(&b);
        if a.intersects(&b) {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn aabb_inflate_monotone(a in aabb_strategy(50.0), d in 0.0..10.0f64) {
        let g = a.inflate(d);
        prop_assert!(g.contains(&a));
        prop_assert!(g.volume() >= a.volume());
    }

    #[test]
    fn segment_distance_symmetric(a in segment_strategy(50.0), b in segment_strategy(50.0)) {
        let dab = a.axis_distance(&b);
        let dba = b.axis_distance(&a);
        prop_assert!((dab - dba).abs() < 1e-6, "dab={dab} dba={dba}");
    }

    #[test]
    fn segment_distance_lower_bounds_endpoint_distance(
        a in segment_strategy(50.0), b in segment_strategy(50.0)
    ) {
        // The true minimum is no larger than any endpoint-pair distance.
        let d = a.axis_distance(&b);
        let min_ep = [
            a.p0.distance(b.p0), a.p0.distance(b.p1),
            a.p1.distance(b.p0), a.p1.distance(b.p1),
        ].into_iter().fold(f64::INFINITY, f64::min);
        prop_assert!(d <= min_ep + 1e-9);
    }

    #[test]
    fn segment_distance_matches_dense_sampling(
        a in segment_strategy(20.0), b in segment_strategy(20.0)
    ) {
        // Sampled distance can only over-estimate the true minimum; and it
        // must not be smaller (within sampling resolution tolerance).
        let exact = a.axis_distance(&b);
        let n = 50;
        let mut sampled = f64::INFINITY;
        for i in 0..=n {
            let pa = a.p0.lerp(a.p1, i as f64 / n as f64);
            for j in 0..=n {
                let pb = b.p0.lerp(b.p1, j as f64 / n as f64);
                sampled = sampled.min(pa.distance(pb));
            }
        }
        prop_assert!(exact <= sampled + 1e-9, "exact={exact} sampled={sampled}");
        // Sampling with step h can overshoot by at most ~(len_a + len_b)/n.
        let tol = (a.axis_length() + b.axis_length()) / n as f64 + 1e-9;
        prop_assert!(sampled <= exact + tol, "exact={exact} sampled={sampled} tol={tol}");
    }

    #[test]
    fn segment_aabb_contains_samples(s in segment_strategy(50.0)) {
        let bb = s.aabb();
        for i in 0..=10 {
            let p = s.p0.lerp(s.p1, i as f64 / 10.0);
            prop_assert!(bb.min_distance_to_point(p) <= 1e-9);
            // Surface points along ±radius on each axis stay in the box
            // (up to f64 rounding in the lerp).
            prop_assert!(bb.min_distance_to_point(p + Vec3::new(s.radius, 0.0, 0.0)) <= 1e-9);
            prop_assert!(bb.min_distance_to_point(p - Vec3::new(0.0, s.radius, 0.0)) <= 1e-9);
        }
    }

    #[test]
    fn capsule_box_test_agrees_with_distance(
        s in segment_strategy(10.0), q in aabb_strategy(10.0)
    ) {
        // intersects_aabb must be consistent with the exact axis-to-box
        // distance (computed here by dense sampling as a reference).
        let hit = s.intersects_aabb(&q);
        let n = 200;
        let mut min_d = f64::INFINITY;
        for i in 0..=n {
            let p = s.p0.lerp(s.p1, i as f64 / n as f64);
            min_d = min_d.min(q.min_distance_to_point(p));
        }
        let tol = s.axis_length() / n as f64 + 1e-7;
        if min_d <= s.radius - tol {
            prop_assert!(hit, "clearly intersecting (min_d={min_d}, r={})", s.radius);
        }
        if min_d > s.radius + tol {
            prop_assert!(!hit, "clearly separated (min_d={min_d}, r={})", s.radius);
        }
    }

    #[test]
    fn morton_roundtrip(x in 0u32..1 << 21, y in 0u32..1 << 21, z in 0u32..1 << 21) {
        prop_assert_eq!(morton_decode3(morton_encode3(x, y, z)), (x, y, z));
    }

    #[test]
    fn hilbert_roundtrip(bits in 1u32..=21, raw in any::<(u32, u32, u32)>()) {
        let m = (1u32 << bits) - 1;
        let (x, y, z) = (raw.0 & m, raw.1 & m, raw.2 & m);
        let d = hilbert_xyz2d(bits, x, y, z);
        prop_assert!(d < 1u64.checked_shl(3 * bits).unwrap_or(u64::MAX));
        prop_assert_eq!(hilbert_d2xyz(bits, d), (x, y, z));
    }

    #[test]
    fn hilbert_adjacency(bits in 1u32..=6, seed in any::<u64>()) {
        let total = 1u64 << (3 * bits);
        let d = seed % (total - 1);
        let (x0, y0, z0) = hilbert_d2xyz(bits, d);
        let (x1, y1, z1) = hilbert_d2xyz(bits, d + 1);
        let step = (x0 as i64 - x1 as i64).abs()
            + (y0 as i64 - y1 as i64).abs()
            + (z0 as i64 - z1 as i64).abs();
        prop_assert_eq!(step, 1);
    }

    #[test]
    fn hilbert_sorter_key_in_range(p in vec3_strategy(1000.0)) {
        let s = HilbertSorter::with_bits(Aabb::new(Vec3::splat(-1000.0), Vec3::splat(1000.0)), 10);
        let k = s.key(p);
        prop_assert!(k < 1u64 << 30);
    }

    #[test]
    fn grid_cells_cover_their_points(p in vec3_strategy(99.0)) {
        let g = GridIndexer::new(Aabb::new(Vec3::splat(-100.0), Vec3::splat(100.0)), [7, 5, 3]);
        let c = g.cell_of(p);
        let cb = g.cell_bounds(c);
        // The point lies inside (or on the boundary of) its cell.
        prop_assert!(cb.min_distance_to_point(p) <= 1e-9);
        prop_assert!(g.linear(c) < g.len());
        prop_assert_eq!(g.delinear(g.linear(c)), c);
    }
}
