//! Compact binary (de)serialisation of segment datasets.
//!
//! The experiment harness regenerates circuits from seeds, but a
//! downstream user indexing *their own* reconstruction needs a way to get
//! segment soups in and out of the library without a heavyweight
//! dependency. The format is deliberately trivial: a magic header, a
//! count, then fixed-width little-endian records — 64 bytes per segment,
//! the sizing assumed by the page model (`neurospatial-storage`'s 8 KiB
//! pages at 128 objects).

use crate::object::NeuronSegment;
use neurospatial_geom::{Segment, Vec3};

/// File magic: "NSPZ" + format version 1.
const MAGIC: [u8; 4] = *b"NSPZ";
const VERSION: u32 = 1;

/// Size of one serialised segment record in bytes.
pub const RECORD_BYTES: usize = 8 + 4 + 4 + 4 + 4 + 7 * 8; // id, neuron, section, idx, pad, geometry

/// Errors arising while decoding a segment dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Header missing or wrong magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Payload length does not match the declared record count.
    Truncated { expected: usize, got: usize },
    /// A record contained non-finite geometry.
    CorruptRecord(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a neurospatial segment file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated { expected, got } => {
                write!(f, "truncated payload: expected {expected} bytes, got {got}")
            }
            DecodeError::CorruptRecord(i) => write!(f, "record {i} has non-finite geometry"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialise segments to the binary format.
pub fn encode_segments(segments: &[NeuronSegment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + segments.len() * RECORD_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(segments.len() as u64).to_le_bytes());
    for s in segments {
        out.extend_from_slice(&s.id.to_le_bytes());
        out.extend_from_slice(&s.neuron.to_le_bytes());
        out.extend_from_slice(&s.section.to_le_bytes());
        out.extend_from_slice(&s.index_on_section.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // padding/reserved
        for v in [
            s.geom.p0.x,
            s.geom.p0.y,
            s.geom.p0.z,
            s.geom.p1.x,
            s.geom.p1.y,
            s.geom.p1.z,
            s.geom.radius,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decode a segment dataset produced by [`encode_segments`].
pub fn decode_segments(bytes: &[u8]) -> Result<Vec<NeuronSegment>, DecodeError> {
    if bytes.len() < 16 || bytes[0..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    // Checked arithmetic: a corrupted header can declare astronomical
    // counts; the expected size must not overflow (caught by the
    // failure-mode test suite).
    let expected = count
        .checked_mul(RECORD_BYTES)
        .and_then(|n| n.checked_add(16))
        .ok_or(DecodeError::Truncated { expected: usize::MAX, got: bytes.len() })?;
    if bytes.len() != expected {
        return Err(DecodeError::Truncated { expected, got: bytes.len() });
    }

    let mut out = Vec::with_capacity(count);
    let mut off = 16usize;
    let f64_at = |bytes: &[u8], off: &mut usize| -> f64 {
        let v = f64::from_le_bytes(bytes[*off..*off + 8].try_into().expect("8 bytes"));
        *off += 8;
        v
    };
    for i in 0..count {
        let id = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        off += 8;
        let neuron = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        off += 4;
        let section = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        off += 4;
        let index_on_section = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        off += 4;
        off += 4; // reserved
        let p0 =
            Vec3::new(f64_at(bytes, &mut off), f64_at(bytes, &mut off), f64_at(bytes, &mut off));
        let p1 =
            Vec3::new(f64_at(bytes, &mut off), f64_at(bytes, &mut off), f64_at(bytes, &mut off));
        let radius = f64_at(bytes, &mut off);
        let geom = Segment { p0, p1, radius };
        if !geom.is_valid() {
            return Err(DecodeError::CorruptRecord(i));
        }
        out.push(NeuronSegment { id, neuron, section, index_on_section, geom });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    #[test]
    fn roundtrip_is_lossless() {
        let c = CircuitBuilder::new(9).neurons(4).build();
        let bytes = encode_segments(c.segments());
        assert_eq!(bytes.len(), 16 + c.segments().len() * RECORD_BYTES);
        let back = decode_segments(&bytes).expect("decode");
        assert_eq!(back.len(), c.segments().len());
        for (a, b) in back.iter().zip(c.segments()) {
            assert_eq!(a, b, "bit-exact roundtrip");
        }
    }

    #[test]
    fn empty_dataset() {
        let bytes = encode_segments(&[]);
        assert_eq!(decode_segments(&bytes).expect("decode"), Vec::new());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode_segments(b"hello"), Err(DecodeError::BadMagic));
        assert_eq!(decode_segments(&[]), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_wrong_version() {
        let c = CircuitBuilder::new(1).neurons(1).build();
        let mut bytes = encode_segments(c.segments());
        bytes[4] = 99;
        assert_eq!(decode_segments(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_and_padding() {
        let c = CircuitBuilder::new(1).neurons(1).build();
        let bytes = encode_segments(c.segments());
        assert!(matches!(
            decode_segments(&bytes[..bytes.len() - 3]),
            Err(DecodeError::Truncated { .. })
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(decode_segments(&padded), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn rejects_corrupt_geometry() {
        let c = CircuitBuilder::new(1).neurons(1).build();
        let mut bytes = encode_segments(&c.segments()[..2]);
        // Overwrite the first record's radius with NaN.
        let radius_off = 16 + RECORD_BYTES - 8;
        bytes[radius_off..radius_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_segments(&bytes), Err(DecodeError::CorruptRecord(0)));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(DecodeError::BadMagic.to_string().contains("not a neurospatial"));
        assert!(DecodeError::Truncated { expected: 10, got: 5 }.to_string().contains("10"));
        assert!(DecodeError::CorruptRecord(3).to_string().contains("3"));
    }
}
