//! # neurospatial-model
//!
//! Synthetic neuroscience data: parametric neuron morphologies, tissue
//! microcircuits and query workloads.
//!
//! The SIGMOD'13 demo this workspace reproduces runs on Blue Brain Project
//! rat-neocortex models, which are proprietary. This crate substitutes a
//! *generator* that reproduces the spatial statistics the three systems
//! (FLAT, SCOUT, TOUCH) are sensitive to:
//!
//! * **extreme, spatially varying density** — millions of elongated
//!   segments packed into a small tissue volume (FLAT's motivation);
//! * **tree-structured, jagged branches** — what SCOUT follows and what
//!   defeats location-only prefetchers;
//! * **two unindexed segment populations in close contact** — the synapse
//!   placement (distance join) workload of TOUCH.
//!
//! ```
//! use neurospatial_model::{CircuitBuilder, MorphologyParams};
//!
//! let circuit = CircuitBuilder::new(42)       // deterministic seed
//!     .neurons(20)
//!     .morphology(MorphologyParams::small())
//!     .build();
//! assert!(circuit.segments().len() > 1000);
//! assert!(circuit.bounds().is_valid());
//! ```

pub mod circuit;
pub mod io;
pub mod mesh;
pub mod morphology;
pub mod object;
pub mod stats;
pub mod swc;
pub mod workload;

pub use circuit::{Circuit, CircuitBuilder, SomaPlacement};
pub use io::{decode_segments, encode_segments, DecodeError};
pub use mesh::{morphology_mesh, segments_mesh, tessellate_capsule, TriangleMesh};
pub use morphology::{Morphology, MorphologyParams, Section, SectionKind};
pub use object::NeuronSegment;
pub use stats::DensityStats;
pub use workload::{NavigationPath, QueryPlacement, RangeQueryWorkload};

/// The RNG used everywhere in this crate: explicitly seeded and portable
/// across platforms and `rand` point releases, so that every experiment in
/// EXPERIMENTS.md is reproducible bit-for-bit.
pub type ModelRng = rand_chacha::ChaCha8Rng;
