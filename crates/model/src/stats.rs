//! Dataset density statistics.
//!
//! The paper's core observation is that neuroscience models are *dense*
//! and that density varies across the volume (dense neuropil vs sparse
//! boundary regions). This module quantifies that so experiments can
//! stratify queries by local density (the demo's "dense and sparse
//! regions", §2.2).

use crate::object::NeuronSegment;
use neurospatial_geom::{Aabb, GridIndexer};

/// Per-cell object counts over a uniform grid plus summary statistics.
#[derive(Debug, Clone)]
pub struct DensityStats {
    grid: GridIndexer,
    counts: Vec<u32>,
}

impl DensityStats {
    /// Histogram object AABB *centres* into a `dims`-cell grid over
    /// `bounds`.
    pub fn new(bounds: Aabb, dims: [usize; 3], objects: &[NeuronSegment]) -> Self {
        let grid = GridIndexer::new(bounds, dims);
        let mut counts = vec![0u32; grid.len()];
        for o in objects {
            let c = grid.cell_of(o.geom.center());
            counts[grid.linear(c)] += 1;
        }
        DensityStats { grid, counts }
    }

    pub fn grid(&self) -> &GridIndexer {
        &self.grid
    }

    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    pub fn mean_count(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().map(|&c| c as f64).sum::<f64>() / self.counts.len() as f64
    }

    /// Fraction of cells containing no objects.
    pub fn empty_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().filter(|&&c| c == 0).count() as f64 / self.counts.len() as f64
    }

    /// Coefficient of variation of cell counts — a skew measure: 0 for
    /// perfectly uniform data, large for clustered data.
    pub fn skew(&self) -> f64 {
        let mean = self.mean_count();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.counts.len() as f64;
        var.sqrt() / mean
    }

    /// Centre of the fullest cell — a canonical "dense region" query
    /// anchor for the experiments.
    pub fn densest_cell_center(&self) -> neurospatial_geom::Vec3 {
        let (i, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("grid has at least one cell");
        self.grid.cell_bounds(self.grid.delinear(i)).center()
    }

    /// Centre of an emptiest cell (ties broken by index).
    pub fn sparsest_cell_center(&self) -> neurospatial_geom::Vec3 {
        let (i, _) = self
            .counts
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("grid has at least one cell");
        self.grid.cell_bounds(self.grid.delinear(i)).center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use neurospatial_geom::Vec3;

    #[test]
    fn counts_sum_to_object_count() {
        let c = CircuitBuilder::new(1).neurons(5).build();
        let s = DensityStats::new(c.bounds(), [4, 4, 4], c.segments());
        let total: u64 = s.counts().iter().map(|&c| c as u64).sum();
        assert_eq!(total, c.segments().len() as u64);
        assert!(s.max_count() > 0);
        assert!(s.mean_count() > 0.0);
    }

    #[test]
    fn clustered_data_is_skewed() {
        // A circuit squeezed into a corner of a huge volume must show
        // higher skew than the same stats over its tight bounds.
        let c = CircuitBuilder::new(3).neurons(5).build();
        let tight = DensityStats::new(c.bounds(), [4, 4, 4], c.segments());
        let huge = Aabb::new(c.bounds().lo, c.bounds().lo + c.bounds().extent() * 10.0);
        let sparse = DensityStats::new(huge, [4, 4, 4], c.segments());
        assert!(sparse.skew() >= tight.skew());
        assert!(sparse.empty_fraction() > 0.5);
    }

    #[test]
    fn dense_and_sparse_anchors_differ() {
        let c = CircuitBuilder::new(4).neurons(6).build();
        let s = DensityStats::new(c.bounds(), [5, 5, 5], c.segments());
        let dense = s.densest_cell_center();
        let sparse = s.sparsest_cell_center();
        // With any non-uniformity the anchors are distinct cells.
        assert!(dense.distance(sparse) > 0.0 || s.skew() == 0.0);
    }

    #[test]
    fn empty_dataset() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let s = DensityStats::new(b, [2, 2, 2], &[]);
        assert_eq!(s.max_count(), 0);
        assert_eq!(s.empty_fraction(), 1.0);
        assert_eq!(s.skew(), 0.0);
    }
}
