//! Query workload generation.
//!
//! Two kinds of workload drive the experiments:
//!
//! * **Range-query workloads** (E1/E2): batches of box queries placed
//!   uniformly or centred on data — the "build, analyze and visualize"
//!   queries of §2.
//! * **Navigation paths** (E3/E4): sequences of *moving range queries*
//!   that follow one neuron branch from the soma outwards — exactly the
//!   demo interaction of §3 where an audience member walks through the
//!   model along a structure.

use crate::circuit::Circuit;
use crate::object::NeuronSegment;
use crate::ModelRng;
use neurospatial_geom::{Aabb, Vec3};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Placement strategy for range-query workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPlacement {
    /// Query centres uniform in the data bounds: mixes dense and sparse
    /// (often empty) regions.
    Uniform,
    /// Query centres on randomly chosen object centres: every query lands
    /// in populated space. This is the demo's "dense region" mode.
    DataCentered,
}

/// A batch of axis-aligned range queries.
#[derive(Debug, Clone)]
pub struct RangeQueryWorkload {
    pub queries: Vec<Aabb>,
    pub placement: QueryPlacement,
    /// Half-extent of the (cubical) queries.
    pub half_extent: f64,
}

impl RangeQueryWorkload {
    /// Generate `n` cube queries of half-extent `half_extent`.
    ///
    /// `objects` is required for [`QueryPlacement::DataCentered`].
    pub fn generate(
        seed: u64,
        bounds: &Aabb,
        n: usize,
        half_extent: f64,
        placement: QueryPlacement,
        objects: Option<&[NeuronSegment]>,
    ) -> Self {
        assert!(bounds.is_valid(), "workload bounds must be valid");
        assert!(half_extent > 0.0);
        let mut rng = ModelRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|_| {
                let c = match placement {
                    QueryPlacement::Uniform => Vec3::new(
                        rng.gen_range(bounds.lo.x..=bounds.hi.x),
                        rng.gen_range(bounds.lo.y..=bounds.hi.y),
                        rng.gen_range(bounds.lo.z..=bounds.hi.z),
                    ),
                    QueryPlacement::DataCentered => {
                        let objs = objects.expect("DataCentered placement requires objects");
                        assert!(
                            !objs.is_empty(),
                            "DataCentered placement requires a non-empty dataset"
                        );
                        objs[rng.gen_range(0..objs.len())].geom.center()
                    }
                };
                Aabb::cube(c, half_extent)
            })
            .collect();
        RangeQueryWorkload { queries, placement, half_extent }
    }
}

/// A branch-following walkthrough: the ground-truth polyline plus the
/// sequence of view boxes a user following it would request.
#[derive(Debug, Clone)]
pub struct NavigationPath {
    /// Neuron being followed (ground truth for prefetch-accuracy tests).
    pub neuron: u32,
    /// Section ids (root-to-tip) of the followed path.
    pub sections: Vec<u32>,
    /// Resampled points along the path, one view position per step.
    pub waypoints: Vec<Vec3>,
    /// The moving range queries (one cube per waypoint).
    pub queries: Vec<Aabb>,
    /// Half-extent of each view box.
    pub view_radius: f64,
}

impl NavigationPath {
    /// Build a walkthrough along one root-to-tip branch path of a random
    /// neuron of `circuit`.
    ///
    /// * `view_radius` — half-extent of the moving query box (how much of
    ///   the surroundings the user visualises at each step);
    /// * `step` — distance between consecutive view positions; the demo's
    ///   smooth walkthrough corresponds to `step < view_radius` so that
    ///   consecutive queries overlap.
    ///
    /// Returns `None` if the chosen neuron has no branches (cannot happen
    /// with the stock generators, but guards degenerate inputs).
    pub fn along_random_branch(
        circuit: &Circuit,
        seed: u64,
        view_radius: f64,
        step: f64,
    ) -> Option<NavigationPath> {
        assert!(view_radius > 0.0 && step > 0.0);
        let mut rng = ModelRng::seed_from_u64(seed);
        let neuron = rng.gen_range(0..circuit.neuron_count()) as u32;
        let m = &circuit.morphologies()[neuron as usize];

        // Walk from a random stem to a tip, choosing a random child at
        // each branch point.
        let stems: Vec<u32> =
            m.sections.iter().filter(|s| s.parent == Some(0)).map(|s| s.id).collect();
        let mut cur = *stems.choose(&mut rng)?;
        let mut sections = vec![cur];
        let mut polyline: Vec<Vec3> = m.sections[cur as usize].points.clone();
        loop {
            let kids: Vec<u32> = m.children_of(cur).map(|s| s.id).collect();
            if kids.is_empty() {
                break;
            }
            cur = *kids.choose(&mut rng).expect("non-empty children");
            sections.push(cur);
            // Skip the duplicated attachment point.
            polyline.extend(m.sections[cur as usize].points.iter().skip(1).copied());
        }

        let waypoints = resample_polyline(&polyline, step);
        let queries = waypoints.iter().map(|w| Aabb::cube(*w, view_radius)).collect();
        Some(NavigationPath { neuron, sections, waypoints, queries, view_radius })
    }

    /// Total length of the followed path.
    pub fn path_length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// Resample a polyline at (approximately) regular arc-length intervals.
/// Always includes the first and last vertex.
pub fn resample_polyline(poly: &[Vec3], step: f64) -> Vec<Vec3> {
    assert!(step > 0.0);
    if poly.is_empty() {
        return Vec::new();
    }
    let mut out = vec![poly[0]];
    let mut residual = step;
    for w in poly.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = a.distance(b);
        if len <= 1e-12 {
            continue;
        }
        let dir = (b - a) / len;
        let mut travelled = 0.0;
        while travelled + residual <= len {
            travelled += residual;
            out.push(a + dir * travelled);
            residual = step;
        }
        residual -= len - travelled;
    }
    let last = *poly.last().expect("non-empty polyline");
    if out.last().map(|p| p.distance(last) > 1e-9).unwrap_or(true) {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    #[test]
    fn uniform_workload_in_bounds() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let w = RangeQueryWorkload::generate(1, &b, 50, 5.0, QueryPlacement::Uniform, None);
        assert_eq!(w.queries.len(), 50);
        for q in &w.queries {
            assert!((q.extent().x - 10.0).abs() < 1e-9);
            assert!(b.inflate(5.0).contains(q));
        }
    }

    #[test]
    fn data_centered_workload_touches_data() {
        let c = CircuitBuilder::new(2).neurons(4).build();
        let w = RangeQueryWorkload::generate(
            3,
            &c.bounds(),
            30,
            8.0,
            QueryPlacement::DataCentered,
            Some(c.segments()),
        );
        // Every query centre is an object centre, so each query overlaps
        // at least that object's AABB.
        for q in &w.queries {
            assert!(c.segments().iter().any(|s| s.aabb().intersects(q)));
        }
    }

    #[test]
    #[should_panic(expected = "DataCentered placement requires objects")]
    fn data_centered_requires_objects() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let _ = RangeQueryWorkload::generate(1, &b, 1, 1.0, QueryPlacement::DataCentered, None);
    }

    #[test]
    fn workload_is_deterministic() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let w1 = RangeQueryWorkload::generate(9, &b, 20, 5.0, QueryPlacement::Uniform, None);
        let w2 = RangeQueryWorkload::generate(9, &b, 20, 5.0, QueryPlacement::Uniform, None);
        assert_eq!(w1.queries, w2.queries);
    }

    #[test]
    fn resampling_spacing() {
        let poly = vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)];
        let pts = resample_polyline(&poly, 2.5);
        assert_eq!(pts.len(), 5); // 0, 2.5, 5, 7.5, 10
        for w in pts.windows(2) {
            assert!((w[0].distance(w[1]) - 2.5).abs() < 1e-9);
        }
        assert_eq!(*pts.last().unwrap(), Vec3::new(10.0, 0.0, 0.0));
    }

    #[test]
    fn resampling_handles_corners_and_duplicates() {
        let poly = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0), // duplicate vertex
            Vec3::new(1.0, 1.0, 0.0),
        ];
        let pts = resample_polyline(&poly, 0.4);
        // Spacing along the path is ~0.4 (measured in arc length).
        assert!(pts.len() >= 5);
        assert_eq!(*pts.last().unwrap(), Vec3::new(1.0, 1.0, 0.0));
        assert!(resample_polyline(&[], 1.0).is_empty());
        let single = resample_polyline(&[Vec3::ONE], 1.0);
        assert_eq!(single, vec![Vec3::ONE]);
    }

    #[test]
    fn navigation_path_follows_real_sections() {
        let c = CircuitBuilder::new(5).neurons(3).build();
        let p = NavigationPath::along_random_branch(&c, 7, 15.0, 5.0).unwrap();
        assert!(!p.sections.is_empty());
        assert!(p.queries.len() >= 2);
        assert_eq!(p.queries.len(), p.waypoints.len());
        let m = &c.morphologies()[p.neuron as usize];
        // Path sections form a parent chain within the neuron.
        for w in p.sections.windows(2) {
            assert_eq!(m.sections[w[1] as usize].parent, Some(w[0]));
        }
        // Every waypoint's query overlaps some segment of the followed
        // neuron (the user is looking at the structure).
        for q in &p.queries {
            assert!(
                c.neuron_segments(p.neuron).any(|s| s.aabb().intersects(q)),
                "query box lost the followed neuron"
            );
        }
    }

    #[test]
    fn navigation_is_deterministic() {
        let c = CircuitBuilder::new(5).neurons(3).build();
        let a = NavigationPath::along_random_branch(&c, 11, 10.0, 4.0).unwrap();
        let b = NavigationPath::along_random_branch(&c, 11, 10.0, 4.0).unwrap();
        assert_eq!(a.neuron, b.neuron);
        assert_eq!(a.waypoints, b.waypoints);
        assert_eq!(a.sections, b.sections);
    }

    #[test]
    fn consecutive_queries_overlap_when_step_small() {
        let c = CircuitBuilder::new(6).neurons(2).build();
        let p = NavigationPath::along_random_branch(&c, 13, 12.0, 6.0).unwrap();
        for w in p.queries.windows(2) {
            assert!(w[0].intersects(&w[1]), "walkthrough queries should overlap");
        }
    }
}
