//! Parametric neuron morphology generator.
//!
//! A morphology is a tree of *sections*; each section is an unbranched
//! piecewise-linear tube (sequence of 3-D points with radii). The
//! generator grows sections by a persistent random walk — the direction of
//! each step is a blend of the previous direction, an isotropic random
//! perturbation and an optional tropism (growth bias, e.g. apical
//! dendrites growing "up") — and branches with a configurable probability,
//! splitting the radius between daughters (Rall-style tapering). This is
//! the standard stochastic-morphology recipe and reproduces the jagged,
//! irregular branch geometry the paper points to as the reason
//! location-only prefetching fails (§3).

use crate::ModelRng;
use neurospatial_geom::{Aabb, Vec3};
use rand::Rng;
use rand::SeedableRng;

/// What part of the neuron a section models. Only affects generation
/// parameters (axons are longer and thinner); indexes never look at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SectionKind {
    Soma,
    Dendrite,
    Axon,
}

/// An unbranched stretch of neurite: `points[i]` with `radii[i]`, joined
/// by capsules.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Section {
    /// Dense id within the morphology (root soma section is 0).
    pub id: u32,
    /// Parent section id (`None` for the soma).
    pub parent: Option<u32>,
    pub kind: SectionKind,
    pub points: Vec<Vec3>,
    pub radii: Vec<f64>,
}

impl Section {
    /// Number of capsule segments the section contributes.
    pub fn segment_count(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Total arc length of the section.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Distal (growing) end of the section.
    pub fn tip(&self) -> Vec3 {
        *self.points.last().expect("section has at least one point")
    }
}

/// A complete neuron morphology rooted at a soma.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Morphology {
    pub soma_center: Vec3,
    pub soma_radius: f64,
    pub sections: Vec<Section>,
}

impl Morphology {
    /// Total number of capsule segments over all sections.
    pub fn segment_count(&self) -> usize {
        self.sections.iter().map(Section::segment_count).sum()
    }

    /// Total cable length.
    pub fn total_length(&self) -> f64 {
        self.sections.iter().map(Section::length).sum()
    }

    /// Bounding box of all section points (inflated by per-point radii).
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::cube(self.soma_center, self.soma_radius);
        for s in &self.sections {
            for (p, r) in s.points.iter().zip(&s.radii) {
                b = b.union(&Aabb::cube(*p, *r));
            }
        }
        b
    }

    /// Child sections of `id` (linear scan; morphologies are small).
    pub fn children_of(&self, id: u32) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(move |s| s.parent == Some(id))
    }

    /// Maximum branch order (root stems are order 1).
    pub fn max_branch_order(&self) -> u32 {
        fn order(m: &Morphology, s: &Section) -> u32 {
            match s.parent {
                None => 0,
                Some(p) => 1 + order(m, &m.sections[p as usize]),
            }
        }
        self.sections.iter().map(|s| order(self, s)).max().unwrap_or(0)
    }

    /// Structural sanity: parents exist and precede children, point/radius
    /// arrays line up, all geometry finite. Used by tests and after SWC
    /// import.
    pub fn validate(&self) -> Result<(), String> {
        if self.soma_radius <= 0.0 || self.soma_radius.is_nan() || !self.soma_center.is_finite() {
            return Err("invalid soma".into());
        }
        for (i, s) in self.sections.iter().enumerate() {
            if s.id as usize != i {
                return Err(format!("section {i} has id {}", s.id));
            }
            if let Some(p) = s.parent {
                if p as usize >= i {
                    return Err(format!("section {i} has forward parent {p}"));
                }
            }
            if s.points.len() < 2 {
                return Err(format!("section {i} has {} points", s.points.len()));
            }
            if s.points.len() != s.radii.len() {
                return Err(format!("section {i}: points/radii length mismatch"));
            }
            for (p, r) in s.points.iter().zip(&s.radii) {
                if !p.is_finite() || !r.is_finite() || *r <= 0.0 {
                    return Err(format!("section {i}: invalid point or radius"));
                }
            }
        }
        Ok(())
    }
}

/// Generation parameters. Lengths are in micrometres to stay close to the
/// biological scale of the BBP models (a neocortical column is a few
/// hundred µm across; segment steps are a few µm).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MorphologyParams {
    /// Soma radius (µm).
    pub soma_radius: f64,
    /// Number of dendrite trunks sprouting from the soma.
    pub dendrite_stems: u32,
    /// Number of axon trunks (usually 1).
    pub axon_stems: u32,
    /// Steps (capsule segments) per section before a branch decision.
    pub steps_per_section: u32,
    /// Step length (µm).
    pub step_length: f64,
    /// Probability that a finished section branches into two daughters.
    pub branch_probability: f64,
    /// Maximum branch order (sections deeper than this terminate).
    pub max_branch_order: u32,
    /// Direction persistence in [0, 1]: 1 = straight lines, 0 = pure
    /// random walk. Neurites are jagged, so realistic values are ~0.6-0.85.
    pub persistence: f64,
    /// Trunk radius at the soma (µm); tapers towards the tips.
    pub initial_radius: f64,
    /// Multiplicative radius taper applied per section depth.
    pub taper: f64,
    /// Growth bias direction (e.g. `+y` for apical dendrites); zero for
    /// isotropic growth.
    pub tropism: Vec3,
    /// Weight of the tropism term.
    pub tropism_strength: f64,
    /// Axon sections are this factor longer than dendrite sections.
    pub axon_elongation: f64,
}

impl MorphologyParams {
    /// A small morphology (~100-300 segments) for unit tests and examples.
    pub fn small() -> Self {
        MorphologyParams {
            soma_radius: 8.0,
            dendrite_stems: 4,
            axon_stems: 1,
            steps_per_section: 8,
            step_length: 4.0,
            branch_probability: 0.55,
            max_branch_order: 4,
            persistence: 0.75,
            initial_radius: 1.2,
            taper: 0.8,
            tropism: Vec3::new(0.0, 1.0, 0.0),
            tropism_strength: 0.1,
            axon_elongation: 2.0,
        }
    }

    /// A realistic cortical-scale morphology (~1-3 k segments), matching
    /// the order of magnitude of BBP reconstructions.
    pub fn cortical() -> Self {
        MorphologyParams {
            soma_radius: 10.0,
            dendrite_stems: 6,
            axon_stems: 1,
            steps_per_section: 12,
            step_length: 5.0,
            branch_probability: 0.6,
            max_branch_order: 6,
            persistence: 0.7,
            initial_radius: 1.5,
            taper: 0.82,
            tropism: Vec3::new(0.0, 1.0, 0.0),
            tropism_strength: 0.15,
            axon_elongation: 2.5,
        }
    }

    /// Generate one morphology with the soma at `soma_center`.
    ///
    /// Deterministic in (`params`, `soma_center`, `seed`).
    pub fn generate(&self, soma_center: Vec3, seed: u64) -> Morphology {
        let mut rng = ModelRng::seed_from_u64(seed);
        let mut sections: Vec<Section> = Vec::new();

        // Root soma "section": a stub of two points so that downstream
        // consumers (SWC, segment extraction) treat the soma uniformly.
        sections.push(Section {
            id: 0,
            parent: None,
            kind: SectionKind::Soma,
            points: vec![soma_center, soma_center + Vec3::new(0.0, self.soma_radius * 0.5, 0.0)],
            radii: vec![self.soma_radius, self.soma_radius],
        });

        // Frontier of sections still to grow: (parent id, origin, initial
        // direction, radius, branch order, kind).
        struct Grow {
            parent: u32,
            origin: Vec3,
            dir: Vec3,
            radius: f64,
            order: u32,
            kind: SectionKind,
        }
        let mut frontier: Vec<Grow> = Vec::new();

        let stems = self.dendrite_stems + self.axon_stems;
        for i in 0..stems {
            let kind =
                if i < self.dendrite_stems { SectionKind::Dendrite } else { SectionKind::Axon };
            // Distribute stems quasi-uniformly over the soma sphere using
            // a jittered Fibonacci lattice.
            let t = (i as f64 + 0.5) / stems as f64;
            let phi = std::f64::consts::PI * (1.0 + 5f64.sqrt()) * i as f64;
            let y = 1.0 - 2.0 * t;
            let r = (1.0 - y * y).max(0.0).sqrt();
            let mut dir = Vec3::new(r * phi.cos(), y, r * phi.sin());
            dir = (dir + random_unit(&mut rng) * 0.2).normalized().unwrap_or(dir);
            frontier.push(Grow {
                parent: 0,
                origin: soma_center + dir * self.soma_radius,
                dir,
                radius: self.initial_radius,
                order: 1,
                kind,
            });
        }

        while let Some(g) = frontier.pop() {
            let id = sections.len() as u32;
            let elong = if g.kind == SectionKind::Axon { self.axon_elongation } else { 1.0 };
            let steps = ((self.steps_per_section as f64 * elong).round() as u32).max(1);

            let mut points = Vec::with_capacity(steps as usize + 1);
            let mut radii = Vec::with_capacity(steps as usize + 1);
            let mut pos = g.origin;
            let mut dir = g.dir;
            points.push(pos);
            radii.push(g.radius);
            for step in 0..steps {
                let noise = random_unit(&mut rng);
                let blended = dir * self.persistence
                    + noise * (1.0 - self.persistence)
                    + self.tropism * self.tropism_strength;
                dir = blended.normalized().unwrap_or(dir);
                pos += dir * self.step_length;
                points.push(pos);
                // Taper within the section towards the distal radius.
                let t = (step + 1) as f64 / steps as f64;
                radii.push(g.radius * (1.0 - t * (1.0 - self.taper)));
            }
            let tip_radius = *radii.last().expect("non-empty radii");
            let tip_dir = dir;
            let tip = pos;

            sections.push(Section { id, parent: Some(g.parent), kind: g.kind, points, radii });

            // Branch decision at the distal end.
            if g.order < self.max_branch_order && rng.gen_bool(self.branch_probability) {
                // Two daughters; radii follow a crude Rall split.
                let child_r = (tip_radius * 0.75).max(0.15);
                for _ in 0..2 {
                    let spread = random_unit(&mut rng);
                    let d = (tip_dir + spread * 0.6).normalized().unwrap_or(tip_dir);
                    frontier.push(Grow {
                        parent: id,
                        origin: tip,
                        dir: d,
                        radius: child_r,
                        order: g.order + 1,
                        kind: g.kind,
                    });
                }
            }
        }

        Morphology { soma_center, soma_radius: self.soma_radius, sections }
    }
}

/// Uniform random direction on the unit sphere.
fn random_unit(rng: &mut ModelRng) -> Vec3 {
    loop {
        let v =
            Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let n2 = v.norm_sq();
        if n2 > 1e-6 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_morphology_is_valid() {
        let m = MorphologyParams::small().generate(Vec3::ZERO, 1);
        m.validate().expect("valid morphology");
        assert!(m.segment_count() > 20, "got {}", m.segment_count());
        assert!(m.total_length() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = MorphologyParams::small();
        let a = p.generate(Vec3::ZERO, 99);
        let b = p.generate(Vec3::ZERO, 99);
        assert_eq!(a.segment_count(), b.segment_count());
        assert_eq!(a.sections.len(), b.sections.len());
        for (sa, sb) in a.sections.iter().zip(&b.sections) {
            assert_eq!(sa.points, sb.points);
        }
        let c = p.generate(Vec3::ZERO, 100);
        // Overwhelmingly likely to differ.
        assert!(
            a.sections.len() != c.sections.len()
                || a.sections.iter().zip(&c.sections).any(|(x, y)| x.points != y.points)
        );
    }

    #[test]
    fn stems_match_params() {
        let mut p = MorphologyParams::small();
        p.branch_probability = 0.0; // no branching: sections = stems + soma
        p.dendrite_stems = 3;
        p.axon_stems = 2;
        let m = p.generate(Vec3::ZERO, 5);
        assert_eq!(m.sections.len(), 1 + 5);
        assert_eq!(m.children_of(0).count(), 5);
        let axons = m.sections.iter().filter(|s| s.kind == SectionKind::Axon).count();
        assert_eq!(axons, 2);
    }

    #[test]
    fn branch_order_respected() {
        let mut p = MorphologyParams::small();
        p.branch_probability = 1.0; // always branch up to the cap
        p.max_branch_order = 3;
        p.dendrite_stems = 1;
        p.axon_stems = 0;
        let m = p.generate(Vec3::ZERO, 3);
        m.validate().unwrap();
        assert_eq!(m.max_branch_order(), 3);
        // A full binary tree of order 3 from one stem: 1 + 2 + 4 = 7 sections.
        assert_eq!(m.sections.len(), 1 + 7);
    }

    #[test]
    fn axons_are_longer() {
        let mut p = MorphologyParams::small();
        p.branch_probability = 0.0;
        p.dendrite_stems = 1;
        p.axon_stems = 1;
        let m = p.generate(Vec3::ZERO, 11);
        let dend = m.sections.iter().find(|s| s.kind == SectionKind::Dendrite).unwrap();
        let axon = m.sections.iter().find(|s| s.kind == SectionKind::Axon).unwrap();
        assert!(axon.segment_count() > dend.segment_count());
    }

    #[test]
    fn radii_taper_along_sections() {
        let m = MorphologyParams::small().generate(Vec3::ZERO, 17);
        for s in &m.sections {
            if s.kind == SectionKind::Soma {
                continue;
            }
            let first = s.radii[0];
            let last = *s.radii.last().unwrap();
            assert!(last <= first, "section {} grew thicker", s.id);
            assert!(last > 0.0);
        }
    }

    #[test]
    fn bounds_contain_all_points() {
        let m = MorphologyParams::cortical().generate(Vec3::new(50.0, -20.0, 3.0), 23);
        let b = m.bounds();
        for s in &m.sections {
            for p in &s.points {
                assert!(b.contains_point(*p));
            }
        }
    }

    #[test]
    fn validate_rejects_corrupted() {
        let mut m = MorphologyParams::small().generate(Vec3::ZERO, 2);
        m.sections[1].parent = Some(999);
        assert!(m.validate().is_err());

        let mut m2 = MorphologyParams::small().generate(Vec3::ZERO, 2);
        m2.sections[1].radii[0] = -1.0;
        assert!(m2.validate().is_err());

        let mut m3 = MorphologyParams::small().generate(Vec3::ZERO, 2);
        m3.sections[1].points.pop();
        assert!(m3.validate().is_err());
    }

    #[test]
    fn tropism_biases_growth() {
        let mut p = MorphologyParams::small();
        p.tropism = Vec3::new(0.0, 1.0, 0.0);
        p.tropism_strength = 0.8;
        p.branch_probability = 0.3;
        let m = p.generate(Vec3::ZERO, 31);
        // Centre of mass of tips should sit clearly above the soma.
        let tips: Vec<Vec3> = m.sections.iter().skip(1).map(Section::tip).collect();
        let com = tips.iter().fold(Vec3::ZERO, |a, &t| a + t) / tips.len() as f64;
        assert!(com.y > 0.0, "tropism should pull growth upward, com={com}");
    }
}
