//! The spatial object type shared by every index and join in the
//! workspace: one capsule-shaped piece of a neuron branch.

use neurospatial_geom::{Aabb, Segment};

/// One indexable piece of neural geometry.
///
/// The identity fields (`neuron`, `section`, `index_on_section`) record the
/// *ground-truth* connectivity of the synthetic morphology. Indexes treat a
/// `NeuronSegment` as an opaque (id, geometry) pair; SCOUT deliberately
/// reconstructs connectivity from geometry alone and only the tests compare
/// its reconstruction against these fields.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NeuronSegment {
    /// Globally unique object id (dense, 0-based within a circuit).
    pub id: u64,
    /// Neuron this segment belongs to.
    pub neuron: u32,
    /// Section (unbranched stretch of dendrite/axon) within the neuron.
    pub section: u32,
    /// Position along the section (0 at the proximal end).
    pub index_on_section: u32,
    /// Capsule geometry.
    pub geom: Segment,
}

impl NeuronSegment {
    /// Bounding box of the capsule.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        self.geom.aabb()
    }

    /// Sort key tuple identifying the segment's place in the morphology.
    #[inline]
    pub fn morphology_key(&self) -> (u32, u32, u32) {
        (self.neuron, self.section, self.index_on_section)
    }
}

/// Segments index directly into the workspace's R-Trees and FLAT.
impl neurospatial_rtree::RTreeObject for NeuronSegment {
    fn aabb(&self) -> Aabb {
        NeuronSegment::aabb(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurospatial_geom::Vec3;

    #[test]
    fn aabb_matches_geometry() {
        let s = NeuronSegment {
            id: 7,
            neuron: 1,
            section: 2,
            index_on_section: 3,
            geom: Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 0.25),
        };
        assert_eq!(s.aabb(), s.geom.aabb());
        assert_eq!(s.morphology_key(), (1, 2, 3));
    }
}
