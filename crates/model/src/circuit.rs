//! Microcircuit generation: many morphologies placed in a tissue volume.
//!
//! The paper's models pack thousands of neurons into a cortical column so
//! that their branches interleave tightly — the density that breaks
//! R-Trees (§2) and makes the synapse join hard (§4). The builder places
//! somas with a configurable strategy and grows one morphology per soma.

use crate::morphology::{Morphology, MorphologyParams};
use crate::object::NeuronSegment;
use crate::ModelRng;
use neurospatial_geom::{Aabb, Segment, Vec3};
use rand::Rng;
use rand::SeedableRng;

/// How somas are distributed in the tissue volume.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SomaPlacement {
    /// Uniform in the volume.
    Uniform,
    /// Horizontal layers (cortical laminae): somas cluster around `count`
    /// evenly spaced y-planes with the given vertical jitter.
    Layered { count: u32, jitter: f64 },
    /// Gaussian clusters around `count` random centres ("minicolumns").
    Clustered { count: u32, sigma: f64 },
}

/// A generated microcircuit: all capsule segments of all neurons plus the
/// ground-truth morphologies.
#[derive(Debug, Clone)]
pub struct Circuit {
    segments: Vec<NeuronSegment>,
    morphologies: Vec<Morphology>,
    bounds: Aabb,
    volume: Aabb,
}

impl Circuit {
    /// All capsule segments, ordered by (neuron, section, index).
    pub fn segments(&self) -> &[NeuronSegment] {
        &self.segments
    }

    /// Consume the circuit, keeping only the segments.
    pub fn into_segments(self) -> Vec<NeuronSegment> {
        self.segments
    }

    /// Ground-truth morphologies (index = neuron id).
    pub fn morphologies(&self) -> &[Morphology] {
        &self.morphologies
    }

    /// Tight bounds of all geometry.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The nominal tissue volume somas were placed in (geometry may stick
    /// out of it).
    pub fn tissue_volume(&self) -> Aabb {
        self.volume
    }

    pub fn neuron_count(&self) -> usize {
        self.morphologies.len()
    }

    /// Mean number of segments per unit volume, a coarse density measure.
    pub fn mean_density(&self) -> f64 {
        self.segments.len() as f64 / self.bounds.volume().max(1e-12)
    }

    /// Segments belonging to one neuron.
    pub fn neuron_segments(&self, neuron: u32) -> impl Iterator<Item = &NeuronSegment> {
        self.segments.iter().filter(move |s| s.neuron == neuron)
    }

    /// Split the circuit's segments into two interleaved populations
    /// (even/odd neuron ids) — the standard way we produce the two
    /// datasets of a TOUCH join (axons of population A vs dendrites of
    /// population B would be the biological phrasing).
    pub fn split_populations(&self) -> (Vec<NeuronSegment>, Vec<NeuronSegment>) {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in &self.segments {
            if s.neuron % 2 == 0 {
                a.push(*s);
            } else {
                b.push(*s);
            }
        }
        (a, b)
    }
}

/// Builder for [`Circuit`].
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    seed: u64,
    neurons: u32,
    volume: Aabb,
    placement: SomaPlacement,
    morphology: MorphologyParams,
}

impl CircuitBuilder {
    /// New builder with a deterministic seed, a 400 µm³ default volume and
    /// small morphologies.
    pub fn new(seed: u64) -> Self {
        CircuitBuilder {
            seed,
            neurons: 10,
            volume: Aabb::new(Vec3::ZERO, Vec3::splat(400.0)),
            placement: SomaPlacement::Uniform,
            morphology: MorphologyParams::small(),
        }
    }

    pub fn neurons(mut self, n: u32) -> Self {
        self.neurons = n;
        self
    }

    pub fn volume(mut self, v: Aabb) -> Self {
        assert!(v.is_valid(), "tissue volume must be a valid box");
        self.volume = v;
        self
    }

    pub fn placement(mut self, p: SomaPlacement) -> Self {
        self.placement = p;
        self
    }

    pub fn morphology(mut self, m: MorphologyParams) -> Self {
        self.morphology = m;
        self
    }

    /// Generate the circuit. Deterministic in all builder inputs.
    pub fn build(self) -> Circuit {
        let mut rng = ModelRng::seed_from_u64(self.seed);
        let somas = self.place_somas(&mut rng);

        let mut segments = Vec::new();
        let mut morphologies = Vec::with_capacity(somas.len());
        let mut bounds = Aabb::EMPTY;
        let mut next_id = 0u64;

        for (neuron, soma) in somas.into_iter().enumerate() {
            let morph_seed = rng.gen::<u64>();
            let m = self.morphology.generate(soma, morph_seed);
            for s in &m.sections {
                for i in 0..s.segment_count() {
                    let geom = Segment::new(
                        s.points[i],
                        s.points[i + 1],
                        // Capsule radius: mean of the two endpoint radii.
                        0.5 * (s.radii[i] + s.radii[i + 1]),
                    );
                    let obj = NeuronSegment {
                        id: next_id,
                        neuron: neuron as u32,
                        section: s.id,
                        index_on_section: i as u32,
                        geom,
                    };
                    bounds = bounds.union(&obj.aabb());
                    segments.push(obj);
                    next_id += 1;
                }
            }
            morphologies.push(m);
        }

        Circuit { segments, morphologies, bounds, volume: self.volume }
    }

    fn place_somas(&self, rng: &mut ModelRng) -> Vec<Vec3> {
        let v = &self.volume;
        let uniform_in = |rng: &mut ModelRng, b: &Aabb| {
            Vec3::new(
                rng.gen_range(b.lo.x..=b.hi.x),
                rng.gen_range(b.lo.y..=b.hi.y),
                rng.gen_range(b.lo.z..=b.hi.z),
            )
        };
        match &self.placement {
            SomaPlacement::Uniform => (0..self.neurons).map(|_| uniform_in(rng, v)).collect(),
            SomaPlacement::Layered { count, jitter } => {
                let count = (*count).max(1);
                (0..self.neurons)
                    .map(|i| {
                        let layer = i % count;
                        let y = v.lo.y
                            + v.extent().y * (layer as f64 + 0.5) / count as f64
                            + rng.gen_range(-jitter..=*jitter);
                        Vec3::new(
                            rng.gen_range(v.lo.x..=v.hi.x),
                            y.clamp(v.lo.y, v.hi.y),
                            rng.gen_range(v.lo.z..=v.hi.z),
                        )
                    })
                    .collect()
            }
            SomaPlacement::Clustered { count, sigma } => {
                let count = (*count).max(1);
                let centres: Vec<Vec3> = (0..count).map(|_| uniform_in(rng, v)).collect();
                (0..self.neurons)
                    .map(|_| {
                        let c = centres[rng.gen_range(0..centres.len())];
                        // Box-Muller-free approximate gaussian: mean of 4
                        // uniforms, scaled — adequate for clustering.
                        let g = |rng: &mut ModelRng| {
                            let s: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum();
                            s * 0.5 * sigma
                        };
                        let p = c + Vec3::new(g(rng), g(rng), g(rng));
                        v.clamp_point(p)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_neurons() {
        let c = CircuitBuilder::new(1).neurons(5).build();
        assert_eq!(c.neuron_count(), 5);
        assert!(c.segments().len() > 100);
        // Segment ids are dense and ordered.
        for (i, s) in c.segments().iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn deterministic_build() {
        let a = CircuitBuilder::new(7).neurons(4).build();
        let b = CircuitBuilder::new(7).neurons(4).build();
        assert_eq!(a.segments().len(), b.segments().len());
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x, y);
        }
        let c = CircuitBuilder::new(8).neurons(4).build();
        assert_ne!(
            a.segments().iter().map(|s| s.geom.p0).collect::<Vec<_>>(),
            c.segments().iter().map(|s| s.geom.p0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounds_cover_everything() {
        let c = CircuitBuilder::new(3).neurons(6).build();
        let b = c.bounds();
        for s in c.segments() {
            assert!(b.contains(&s.aabb()));
        }
    }

    #[test]
    fn layered_placement_stratifies_y() {
        let vol = Aabb::new(Vec3::ZERO, Vec3::splat(1000.0));
        let c = CircuitBuilder::new(5)
            .neurons(60)
            .volume(vol)
            .placement(SomaPlacement::Layered { count: 3, jitter: 5.0 })
            .build();
        // Soma y-coordinates should concentrate near the 3 plane heights.
        let expected = [1000.0 / 6.0, 500.0, 5.0 * 1000.0 / 6.0];
        for m in c.morphologies() {
            let y = m.soma_center.y;
            let near = expected.iter().any(|e| (y - e).abs() <= 5.0 + 1e-9);
            assert!(near, "soma y={y} not near any layer");
        }
    }

    #[test]
    fn clustered_placement_stays_in_volume() {
        let vol = Aabb::new(Vec3::ZERO, Vec3::splat(200.0));
        let c = CircuitBuilder::new(11)
            .neurons(50)
            .volume(vol)
            .placement(SomaPlacement::Clustered { count: 4, sigma: 20.0 })
            .build();
        for m in c.morphologies() {
            assert!(vol.contains_point(m.soma_center));
        }
    }

    #[test]
    fn population_split_partitions_segments() {
        let c = CircuitBuilder::new(2).neurons(6).build();
        let (a, b) = c.split_populations();
        assert_eq!(a.len() + b.len(), c.segments().len());
        assert!(a.iter().all(|s| s.neuron % 2 == 0));
        assert!(b.iter().all(|s| s.neuron % 2 == 1));
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn neuron_segments_filter() {
        let c = CircuitBuilder::new(4).neurons(3).build();
        let n0: Vec<_> = c.neuron_segments(0).collect();
        assert!(!n0.is_empty());
        assert!(n0.iter().all(|s| s.neuron == 0));
        let total: usize = (0..3).map(|n| c.neuron_segments(n).count()).sum();
        assert_eq!(total, c.segments().len());
    }

    #[test]
    fn density_positive() {
        let c = CircuitBuilder::new(9).neurons(8).build();
        assert!(c.mean_density() > 0.0);
    }
}
