//! The crash-consistency contract for live ingest: under **any** seeded
//! [`FaultPlan`] that kills the WAL at an arbitrary byte offset, the
//! state reconstructed by recovery equals — byte for byte — a
//! from-scratch rebuild over exactly the *acknowledged* prefix of the
//! write stream. No acked write is ever lost; no unacked write is ever
//! resurrected; silent corruption inside committed history is refused,
//! never truncated.
//!
//! Same conventions as `tests/chaos.rs`: fault schedules are pure data
//! (seed → injections), `CHAOS_SEED` overrides the base seed, and every
//! test writes the plan it is about to exercise to
//! `target/chaos/<test>.txt`, removing it only on success — a red run
//! leaves a replayable breadcrumb behind for CI to archive.

use neurospatial::delta::apply_ops;
use neurospatial::prelude::*;
use neurospatial_storage::wal::WAL_HEADER_BYTES;
use std::path::PathBuf;

/// Bytes that pass through the fault seam while a fresh live database
/// builds: the new file's header append plus the initial checkpoint's
/// whole-file image (which itself contains the header). Crash/flip
/// offsets must start past this point to hit the op stream.
fn seam_bytes_after_build(wal_file_len: u64) -> u64 {
    wal_file_len + WAL_HEADER_BYTES as u64
}

/// Base seed: `CHAOS_SEED` env override, fixed default.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FF_EE00_D00D)
}

/// splitmix64: derive per-round seeds without correlating rounds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-unique WAL path, removed on drop.
struct ScratchWal(PathBuf);

impl ScratchWal {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        ScratchWal(
            std::env::temp_dir()
                .join(format!("neurospatial-ingest-chaos-{tag}-{}-{n}.wal", std::process::id())),
        )
    }
}

impl Drop for ScratchWal {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// The replay breadcrumb: written before the assertions, deleted only if
/// the whole test passes.
struct PlanDump(PathBuf);

impl PlanDump {
    fn new(test: &str) -> Self {
        let dir = PathBuf::from("target/chaos");
        std::fs::create_dir_all(&dir).ok();
        PlanDump(dir.join(format!("{test}.txt")))
    }

    fn record(&self, context: &str, plan: &FaultPlan) {
        let body = format!(
            "CHAOS_SEED={} {}\n{}\nreplay: CHAOS_SEED={} cargo test --test ingest_chaos\n",
            chaos_seed(),
            context,
            plan.dump(),
            chaos_seed()
        );
        std::fs::write(&self.0, body).ok();
    }

    fn success(self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A deterministic mixed write stream over `base`: inserts of fresh
/// far-away segments and removals of still-live ids, every op valid at
/// the moment it is issued (so a fault, not validation, is the only
/// reason an op can fail).
fn op_stream(seed: u64, base: &[NeuronSegment], n: usize) -> Vec<WriteOp> {
    let mut live: Vec<u64> = base.iter().map(|s| s.id).collect();
    let mut next_id = 1_000_000u64;
    let mut ops = Vec::with_capacity(n);
    for k in 0..n as u64 {
        let h = mix(seed, 0xBEEF ^ k);
        // Two-thirds inserts, one-third removals (when anything is live).
        if h % 3 < 2 || live.is_empty() {
            let x = (h % 997) as f64 * 3.0 + 2_000.0;
            let y = ((h >> 17) % 499) as f64 - 250.0;
            let seg = NeuronSegment {
                id: next_id,
                neuron: 77_000 + k as u32,
                section: 0,
                index_on_section: k as u32,
                geom: Segment::new(
                    Vec3::new(x, y, 0.0),
                    Vec3::new(x + 1.5, y, 1.0),
                    0.3 + (h % 7) as f64 * 0.1,
                ),
            };
            live.push(next_id);
            next_id += 1;
            ops.push(WriteOp::Insert(seg));
        } else {
            let victim = live.swap_remove((h >> 11) as usize % live.len());
            ops.push(WriteOp::Remove(victim));
        }
    }
    ops
}

/// Everything-box for a base circuit plus the far-away insert band.
fn everything(c: &Circuit) -> Aabb {
    c.bounds().union(&Aabb::cube(Vec3::new(3_000.0, 0.0, 0.0), 3_000.0))
}

/// Segments of a range query, sorted by id — the byte-comparison form.
fn snapshot(db: &NeuroDb, q: &Aabb) -> Vec<NeuronSegment> {
    let mut out = db.range_query(q).segments;
    out.sort_by_key(|s| s.id);
    out
}

/// A from-scratch frozen rebuild of `base` + `acked`, same backend
/// geometry as the database under test.
fn rebuild(
    base: &[NeuronSegment],
    acked: &[WriteOp],
    backend: IndexBackend,
    shards: usize,
) -> NeuroDb {
    let mut want = base.to_vec();
    apply_ops(&mut want, acked);
    NeuroDb::builder()
        .segments(want)
        .backend(backend)
        .shards(shards)
        .threads(2)
        .build()
        .expect("reference rebuild")
}

/// Kill the WAL at arbitrary byte offsets across the op stream, on all
/// four backends, mono and sharded: post-recovery state must be
/// byte-identical to a from-scratch rebuild of the acked prefix, and
/// live queries must match that rebuild at every step *before* the
/// crash too.
#[test]
fn recovery_equals_rebuild_of_the_acked_prefix_at_any_crash_offset() {
    let dump = PlanDump::new("ingest_crash_offsets");
    let base_seed = chaos_seed();
    let mut crashes = 0u64;
    for round in 0..2u64 {
        let seed = mix(base_seed, round);
        let circuit = CircuitBuilder::new(seed % 10_000).neurons(3 + (seed % 3) as u32).build();
        let ops = op_stream(seed, circuit.segments(), 14);
        let q = everything(&circuit);

        // Fault-free measurement run: learn where the op stream's bytes
        // live so crash offsets land inside it. The fault seam counts
        // every byte that passes through it — including the initial
        // checkpoint's full file image — so the base offset is the
        // on-disk size right after build, not `wal_bytes`.
        let (build_len, ops_len) = {
            let wal = ScratchWal::new("measure");
            let db = NeuroDb::builder().circuit(&circuit).durable(&wal.0).build().expect("live");
            let built = std::fs::metadata(&wal.0).expect("wal exists").len();
            let start = db.wal_health().expect("live").wal_bytes;
            for op in &ops {
                db.write_batch(std::slice::from_ref(op)).expect("fault-free ack");
            }
            (built, db.wal_health().expect("live").wal_bytes - start)
        };
        assert!(ops_len > 0, "op stream wrote nothing");

        for (cfg_idx, (backend, shards)) in
            IndexBackend::ALL.iter().flat_map(|b| [(*b, 1usize), (*b, 3)]).enumerate()
        {
            // One crash offset per config, spread across the op stream
            // (± a tail margin so some plans never fire).
            let span = ops_len + 60;
            let crash_at =
                seam_bytes_after_build(build_len) + 1 + mix(seed, 0xC0DE ^ cfg_idx as u64) % span;
            let plan = FaultPlan::new(seed).with_write_crash_at(crash_at);
            dump.record(
                &format!("round={round} backend={backend:?} shards={shards} crash_at={crash_at}"),
                &plan,
            );

            let wal = ScratchWal::new("crash");
            let db = NeuroDb::builder()
                .circuit(&circuit)
                .backend(backend)
                .shards(shards)
                .threads(2)
                .durable(&wal.0)
                .wal_faults(plan)
                .build()
                .expect("crash offsets are past the initial checkpoint");

            let mut acked: Vec<WriteOp> = Vec::new();
            for (k, op) in ops.iter().enumerate() {
                match db.write_batch(std::slice::from_ref(op)) {
                    Ok(_) => acked.push(op.clone()),
                    Err(_) => break, // crashed: every later write fails too
                }
                // Equivalence *during* ingest, at a few checkpoints.
                if k % 5 == 4 {
                    let reference = rebuild(circuit.segments(), &acked, backend, shards);
                    assert_eq!(
                        snapshot(&db, &q),
                        snapshot(&reference, &q),
                        "round {round} {backend:?}/{shards}: live view diverged at op {k}"
                    );
                }
            }
            if acked.len() < ops.len() {
                crashes += 1;
            }
            drop(db);

            // Reopen fault-free: the recovered state must equal the
            // rebuild of exactly the acked prefix — byte for byte.
            let recovered = NeuroDb::builder()
                .segments(vec![])
                .backend(backend)
                .shards(shards)
                .threads(2)
                .durable(&wal.0)
                .build()
                .expect("recovery");
            let reference = rebuild(circuit.segments(), &acked, backend, shards);
            assert_eq!(recovered.len(), reference.len(), "round {round} {backend:?}/{shards}");
            assert_eq!(
                snapshot(&recovered, &q),
                snapshot(&reference, &q),
                "round {round} {backend:?}/{shards} crash_at={crash_at}: \
                 recovered state is not the acked prefix"
            );
            // KNN agrees too (exact candidate order).
            let p = circuit.segments()[0].geom.p0;
            let ids =
                |db: &NeuroDb| db.knn(p, 8).0.iter().map(|n| n.segment.id).collect::<Vec<_>>();
            assert_eq!(ids(&recovered), ids(&reference), "round {round} {backend:?}/{shards} knn");
        }
    }
    assert!(crashes > 0, "no plan ever fired — crash injection is dead");
    dump.success();
}

/// A bit flip inside *committed* history must surface as a typed
/// corruption error on reopen — refused, never silently truncated into
/// "the tail was torn".
#[test]
fn flipped_committed_record_is_refused_not_truncated() {
    let dump = PlanDump::new("ingest_flip_committed");
    let seed = mix(chaos_seed(), 0xF11B);
    let circuit = CircuitBuilder::new(seed % 10_000).neurons(3).build();
    let ops = op_stream(seed, circuit.segments(), 6);

    // Clean run establishes where committed bytes live.
    let (build_len, ops_len) = {
        let wal = ScratchWal::new("flip-measure");
        let db = NeuroDb::builder().circuit(&circuit).durable(&wal.0).build().expect("live");
        let built = std::fs::metadata(&wal.0).expect("wal exists").len();
        let start = db.wal_health().expect("live").wal_bytes;
        for op in &ops {
            db.write_batch(std::slice::from_ref(op)).expect("ack");
        }
        (built, db.wal_health().expect("live").wal_bytes - start)
    };

    // Flip one byte inside the *checksummed* region of the first
    // committed record: kind / lsn / crc, bytes 4..21 of the record.
    // The 4-byte length prefix is deliberately excluded — an inflated
    // length that runs past EOF is framing-ambiguous with a torn tail,
    // so truncation (not a hard error) is the correct answer there.
    let _ = ops_len;
    let flip_at = seam_bytes_after_build(build_len) + 4 + mix(seed, 1) % 17;
    let plan = FaultPlan::new(seed).with_write_flip(flip_at, 0x40);
    dump.record(&format!("flip_at={flip_at}"), &plan);

    let wal = ScratchWal::new("flip");
    {
        let db = NeuroDb::builder()
            .circuit(&circuit)
            .durable(&wal.0)
            .wal_faults(plan)
            .build()
            .expect("flips do not fail the build");
        for op in &ops {
            // The flip corrupts bytes on disk, not the in-memory path:
            // every write still acks.
            db.write_batch(std::slice::from_ref(op)).expect("acked over silent corruption");
        }
    }
    match NeuroDb::builder().segments(vec![]).durable(&wal.0).build() {
        Err(NeuroError::Storage(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("corrupt") || msg.contains("checksum") || msg.contains("Corrupt"),
                "expected a typed corruption error, got: {msg}"
            );
        }
        Ok(_) => panic!("reopen over flipped committed history must fail typed"),
        Err(other) => panic!("expected NeuroError::Storage, got {other:?}"),
    }
    dump.success();
}

/// Crash *between commit and ack* is indistinguishable (to the client)
/// from a crash before commit — but recovery must still reflect exactly
/// what hit the log: a batch whose commit record fully persisted is
/// replayed even though the caller never saw the ack.
#[test]
fn torn_tail_is_truncated_and_acked_history_survives() {
    let dump = PlanDump::new("ingest_torn_tail");
    let seed = mix(chaos_seed(), 0x7EA2);
    let circuit = CircuitBuilder::new(seed % 10_000).neurons(4).build();
    let ops = op_stream(seed, circuit.segments(), 8);
    let q = everything(&circuit);

    let build_len = {
        let wal = ScratchWal::new("tear-measure");
        let _db = NeuroDb::builder().circuit(&circuit).durable(&wal.0).build().expect("live");
        std::fs::metadata(&wal.0).expect("wal exists").len()
    };

    // Crash 10 bytes into the first batch: torn mid-record, nothing
    // acked.
    let plan = FaultPlan::new(seed).with_write_crash_at(seam_bytes_after_build(build_len) + 10);
    dump.record("torn first batch", &plan);
    let wal = ScratchWal::new("tear");
    let mut acked = Vec::new();
    {
        let db = NeuroDb::builder()
            .circuit(&circuit)
            .durable(&wal.0)
            .wal_faults(plan)
            .build()
            .expect("live");
        for op in &ops {
            match db.write_batch(std::slice::from_ref(op)) {
                Ok(_) => acked.push(op.clone()),
                Err(_) => break,
            }
        }
    }
    assert!(acked.is_empty(), "the very first batch was torn — nothing acked");

    let recovered = NeuroDb::builder().segments(vec![]).durable(&wal.0).build().expect("recovery");
    let health = recovered.wal_health().expect("live");
    assert!(health.recovered_torn_tail, "the torn tail must be detected");
    let reference = rebuild(circuit.segments(), &acked, IndexBackend::Flat, 1);
    assert_eq!(
        snapshot(&recovered, &q),
        snapshot(&reference, &q),
        "unacked torn batch must not be resurrected"
    );
    dump.success();
}
