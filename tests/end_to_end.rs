//! Determinism and scale: the full pipeline produces identical results
//! run-to-run, and behaves across a size sweep.

use neurospatial::prelude::*;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let c = CircuitBuilder::new(77).neurons(12).build();
        let db = NeuroDb::from_circuit(&c);
        let q = Aabb::cube(c.bounds().center(), 25.0);
        let (hits, qstats) = db.range_query(&q);
        let join = db.find_synapse_candidates(1.0);
        let path = db.navigation_path(&c, 5, 15.0, 6.0).expect("path");
        let walk = db.walkthrough(&path, WalkthroughMethod::Scout);
        (
            hits.len(),
            qstats.pages_read,
            join.sorted_pairs(),
            walk.total_stall_ms.to_bits(),
            walk.total_prefetched,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn results_scale_with_circuit_size() {
    let mut last_segments = 0;
    for neurons in [4u32, 8, 16] {
        let c = CircuitBuilder::new(31).neurons(neurons).build();
        assert!(c.segments().len() > last_segments, "more neurons, more segments");
        last_segments = c.segments().len();

        let db = NeuroDb::from_circuit(&c);
        let q = Aabb::cube(c.bounds().center(), 1e6); // everything
        let (hits, _) = db.range_query(&q);
        assert_eq!(hits.len(), c.segments().len());
    }
}

#[test]
fn query_stats_are_internally_consistent() {
    let c = CircuitBuilder::new(13).neurons(16).build();
    let db = NeuroDb::from_circuit(&c);
    let w = RangeQueryWorkload::generate(
        3,
        &c.bounds(),
        20,
        12.0,
        QueryPlacement::DataCentered,
        Some(c.segments()),
    );
    for q in &w.queries {
        let (hits, s) = db.range_query(q);
        assert_eq!(s.results as usize, hits.len());
        assert!(s.objects_tested >= s.results);
        assert_eq!(s.crawl_order.len() as u64, s.pages_read);
        // Each read page holds at most page_capacity objects.
        assert!(s.objects_tested <= s.pages_read * db.index().params().page_capacity as u64);
    }
}

#[test]
fn io_accounting_flows_through_the_stack() {
    // Charge a FLAT query against the disk simulator by hand and check
    // the statistics add up.
    let c = CircuitBuilder::new(21).neurons(10).build();
    let db = NeuroDb::from_circuit(&c);
    let disk = DiskSim::new(u64::MAX, CostModel::default());
    let mut pool = BufferPool::new(64);
    let q = Aabb::cube(c.bounds().center(), 30.0);
    let mut data_pages = 0u64;
    let (_, stats) = db.index().range_query_with(&q, |acc| {
        if let neurospatial::flat::PageAccess::Data(p) = acc {
            data_pages += 1;
            pool.get(PageId(p as u64), &disk).expect("simulated disk");
        }
    });
    assert_eq!(data_pages, stats.pages_read);
    assert_eq!(disk.stats().total_reads(), pool.stats().misses);
    assert_eq!(pool.stats().misses, stats.pages_read, "first touch misses everything");

    // Re-running the same query hits the pool for every page.
    let (_, _) = db.index().range_query_with(&q, |acc| {
        if let neurospatial::flat::PageAccess::Data(p) = acc {
            pool.get(PageId(p as u64), &disk).expect("simulated disk");
        }
    });
    assert_eq!(pool.stats().hits, stats.pages_read);
}

#[test]
fn fault_injection_surfaces_errors() {
    let disk = DiskSim::new(u64::MAX, CostModel::default());
    disk.inject_faults(Some(2));
    let mut pool = BufferPool::new(8);
    let mut errors = 0;
    for i in 0..10 {
        if pool.get(PageId(i), &disk).is_err() {
            errors += 1;
        }
    }
    assert_eq!(errors, 5, "every second read fails");
}
