//! Determinism and scale: the full pipeline produces identical results
//! run-to-run, and behaves across a size sweep.

use neurospatial::prelude::*;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let c = CircuitBuilder::new(77).neurons(12).build();
        let db = NeuroDb::from_circuit(&c);
        let q = Aabb::cube(c.bounds().center(), 25.0);
        let out = db.range_query(&q);
        let join = db.find_synapse_candidates(1.0).expect("two populations");
        let path = db.navigation_path(&c, 5, 15.0, 6.0).expect("path");
        let walk = db.walkthrough(&path, WalkthroughMethod::Scout).expect("flat backend");
        (
            out.len(),
            out.stats.nodes_read,
            join.sorted_pairs(),
            walk.total_stall_ms.to_bits(),
            walk.total_prefetched,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn results_scale_with_circuit_size() {
    let mut last_segments = 0;
    for neurons in [4u32, 8, 16] {
        let c = CircuitBuilder::new(31).neurons(neurons).build();
        assert!(c.segments().len() > last_segments, "more neurons, more segments");
        last_segments = c.segments().len();

        let db = NeuroDb::from_circuit(&c);
        let q = Aabb::cube(c.bounds().center(), 1e6); // everything
        let out = db.range_query(&q);
        assert_eq!(out.len(), c.segments().len());
    }
}

#[test]
fn query_stats_are_internally_consistent() {
    let c = CircuitBuilder::new(13).neurons(16).build();
    let db = NeuroDb::from_circuit(&c);
    let w = RangeQueryWorkload::generate(
        3,
        &c.bounds(),
        20,
        12.0,
        QueryPlacement::DataCentered,
        Some(c.segments()),
    );
    let flat = db.flat_index().expect("default backend is FLAT");
    for q in &w.queries {
        // Unified stats through the facade…
        let out = db.range_query(q);
        assert_eq!(out.stats.results as usize, out.len());
        assert!(out.stats.objects_tested >= out.stats.results);
        // …and page-level detail through the FLAT view.
        let (hits, s) = flat.range_query(q);
        assert_eq!(hits.len(), out.len());
        assert_eq!(s.crawl_order.len() as u64, s.pages_read);
        assert_eq!(s.pages_read + s.seed_nodes_read, out.stats.nodes_read);
        // Each read page holds at most page_capacity objects.
        assert!(s.objects_tested <= s.pages_read * flat.params().page_capacity as u64);
    }
}

#[test]
fn io_accounting_flows_through_the_stack() {
    // Charge a FLAT query against the disk simulator by hand and check
    // the statistics add up.
    let c = CircuitBuilder::new(21).neurons(10).build();
    let db = NeuroDb::from_circuit(&c);
    let disk = DiskSim::new(u64::MAX, CostModel::default());
    let mut pool = BufferPool::new(64);
    let q = Aabb::cube(c.bounds().center(), 30.0);
    let mut data_pages = 0u64;
    let flat = db.flat_index().expect("default backend is FLAT");
    let (_, stats) = flat.range_query_with(&q, |acc| {
        if let neurospatial::flat::PageAccess::Data(p) = acc {
            data_pages += 1;
            pool.get(PageId(p as u64), &disk).expect("simulated disk");
        }
    });
    assert_eq!(data_pages, stats.pages_read);
    assert_eq!(disk.stats().total_reads(), pool.stats().misses);
    assert_eq!(pool.stats().misses, stats.pages_read, "first touch misses everything");

    // Re-running the same query hits the pool for every page.
    let (_, _) = flat.range_query_with(&q, |acc| {
        if let neurospatial::flat::PageAccess::Data(p) = acc {
            pool.get(PageId(p as u64), &disk).expect("simulated disk");
        }
    });
    assert_eq!(pool.stats().hits, stats.pages_read);
}

#[test]
fn fault_injection_surfaces_errors() {
    let disk = DiskSim::new(u64::MAX, CostModel::default());
    disk.inject_faults(Some(2));
    let mut pool = BufferPool::new(8);
    let mut errors = 0;
    for i in 0..10 {
        if pool.get(PageId(i), &disk).is_err() {
            errors += 1;
        }
    }
    assert_eq!(errors, 5, "every second read fails");
}
