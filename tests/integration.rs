//! End-to-end integration: circuit generation → indexing → querying →
//! joining → exploring, through the public facade.

use neurospatial::prelude::*;

/// A medium circuit shared by the tests in this file.
fn circuit() -> Circuit {
    CircuitBuilder::new(2024)
        .neurons(24)
        .morphology(MorphologyParams::small())
        .placement(SomaPlacement::Layered { count: 3, jitter: 10.0 })
        .build()
}

#[test]
fn flat_rtree_and_scan_agree_on_a_circuit() {
    let c = circuit();
    let db = NeuroDb::from_circuit(&c);
    let tree = RTree::bulk_load(c.segments().to_vec(), RTreeParams::default());

    let workload = RangeQueryWorkload::generate(
        7,
        &c.bounds(),
        25,
        15.0,
        QueryPlacement::DataCentered,
        Some(c.segments()),
    );
    for q in &workload.queries {
        let flat_out = db.range_query(q);
        let (tree_hits, _) = tree.range_query(q);
        let scan = c.segments().iter().filter(|s| s.aabb().intersects(q)).count();
        assert_eq!(flat_out.len(), scan, "FLAT vs scan at {q}");
        assert_eq!(tree_hits.len(), scan, "R-Tree vs scan at {q}");
    }
}

#[test]
fn all_join_algorithms_agree_on_synapse_workload() {
    let c = circuit();
    let (a, b) = c.split_populations();
    let eps = 1.5;
    let reference = NestedLoopJoin.join(&a, &b, eps).sorted_pairs();
    assert!(!reference.is_empty(), "workload should produce synapse candidates");
    for (name, pairs) in [
        ("touch", TouchJoin::default().join(&a, &b, eps).sorted_pairs()),
        ("touch-par", TouchJoin::parallel(3).join(&a, &b, eps).sorted_pairs()),
        ("sweep", PlaneSweepJoin.join(&a, &b, eps).sorted_pairs()),
        ("pbsm", PbsmJoin::default().join(&a, &b, eps).sorted_pairs()),
        ("s3", S3Join::default().join(&a, &b, eps).sorted_pairs()),
    ] {
        assert_eq!(pairs, reference, "{name} disagrees with nested loop");
    }
}

#[test]
fn synapse_pairs_are_biologically_sane() {
    // Every reported pair must involve segments from different neurons
    // whose capsules really are within epsilon.
    let c = circuit();
    let (a, b) = c.split_populations();
    let eps = 2.0;
    let r = TouchJoin::default().join(&a, &b, eps);
    for &(i, j) in &r.pairs {
        let (x, y) = (&a[i as usize], &b[j as usize]);
        assert_ne!(x.neuron, y.neuron);
        assert!(x.geom.within_distance(&y.geom, eps));
    }
}

#[test]
fn walkthrough_methods_ranked_as_the_paper_claims() {
    // Aggregate over several paths: scout ≤ extrapolation/hilbert stall,
    // and every method beats or ties no-prefetching.
    let c = circuit();
    let db = NeuroDb::from_circuit(&c);
    let mut totals = [
        (WalkthroughMethod::None, 0.0f64),
        (WalkthroughMethod::Hilbert, 0.0),
        (WalkthroughMethod::Extrapolation, 0.0),
        (WalkthroughMethod::Scout, 0.0),
    ];
    let mut paths = 0;
    for seed in 0..8 {
        let Some(path) = db.navigation_path(&c, seed, 18.0, 7.0) else { continue };
        if path.queries.len() < 4 {
            continue;
        }
        paths += 1;
        for (m, acc) in totals.iter_mut() {
            *acc += db.walkthrough(&path, *m).expect("flat backend").total_stall_ms;
        }
    }
    assert!(paths >= 3, "need several usable paths");
    let stall =
        |m: WalkthroughMethod| totals.iter().find(|(x, _)| *x == m).expect("method present").1;
    assert!(stall(WalkthroughMethod::Scout) < stall(WalkthroughMethod::None));
    assert!(stall(WalkthroughMethod::Scout) <= stall(WalkthroughMethod::Hilbert));
    assert!(stall(WalkthroughMethod::Scout) <= stall(WalkthroughMethod::Extrapolation));
}

#[test]
fn swc_roundtrip_through_workspace() {
    let c = circuit();
    let m = &c.morphologies()[0];
    let text = neurospatial::model::swc::to_swc(m);
    let back = neurospatial::model::swc::from_swc(&text).expect("parse");
    back.validate().expect("valid");
    assert!((back.total_length() - m.total_length()).abs() < 1e-3);
}

#[test]
fn density_stats_identify_dense_regions() {
    let c = circuit();
    let stats = DensityStats::new(c.bounds(), [6, 6, 6], c.segments());
    let dense = stats.densest_cell_center();
    let sparse = stats.sparsest_cell_center();
    let db = NeuroDb::from_circuit(&c);
    let dense_hits = db.range_query(&Aabb::cube(dense, 20.0));
    let sparse_hits = db.range_query(&Aabb::cube(sparse, 20.0));
    assert!(
        dense_hits.len() >= sparse_hits.len(),
        "dense anchor ({}) should yield >= results than sparse ({})",
        dense_hits.len(),
        sparse_hits.len()
    );
}
