//! The shared backend-equivalence property suite: every [`SpatialIndex`]
//! backend must return exactly the segments a brute-force scan returns,
//! on random circuits, random raw segment soups, empty datasets and
//! degenerate (point / flat / empty) query boxes alike.
//!
//! This is the contract that makes the backends race of the demo fair:
//! the designs may differ in cost, never in answers.

use neurospatial::prelude::*;
use proptest::prelude::*;

/// Brute-force reference: ids of all segments intersecting `q`.
fn scan_ids(segments: &[NeuronSegment], q: &Aabb) -> Vec<u64> {
    let mut ids: Vec<u64> =
        segments.iter().filter(|s| s.aabb().intersects(q)).map(|s| s.id).collect();
    ids.sort_unstable();
    ids
}

/// Assert all four backends agree with the scan on every query. The one
/// shared checker every property below funnels into.
fn assert_backends_match_scan(
    segments: &[NeuronSegment],
    queries: &[Aabb],
    page_capacity: usize,
) -> Result<(), TestCaseError> {
    let params = IndexParams::with_page_capacity(page_capacity);
    for backend in IndexBackend::ALL {
        let index = backend.build(segments.to_vec(), &params);
        prop_assert_eq!(index.len(), segments.len(), "{} len", backend);
        for q in queries {
            let out = index.range_query(q);
            let want = scan_ids(segments, q);
            prop_assert_eq!(
                out.sorted_ids(),
                want.clone(),
                "{} disagrees with scan at {} (cap {})",
                backend,
                q,
                page_capacity
            );
            prop_assert_eq!(out.stats.results as usize, want.len(), "{} stats", backend);
        }
    }
    Ok(())
}

/// A raw segment soup: uniformly scattered capsules, ids dense from 0.
fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    prop::collection::vec(
        ((-60.0..60.0, -60.0..60.0, -60.0..60.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..2.0f64),
        0..250,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), (dx, dy, dz), r))| {
                let p0 = Vec3::new(x, y, z);
                NeuronSegment {
                    id: i as u64,
                    neuron: (i % 7) as u32,
                    section: (i % 3) as u32,
                    index_on_section: i as u32,
                    geom: Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r),
                }
            })
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.5..50.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_on_random_soups(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..6),
        cap in 4usize..80,
    ) {
        assert_backends_match_scan(&segments, &queries, cap)?;
    }

    #[test]
    fn backends_agree_on_random_circuits(
        seed in 0u64..3000,
        neurons in 2u32..8,
        half in 2.0..45.0f64,
        cap in 4usize..96,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let queries = [
            Aabb::cube(c.bounds().center(), half),
            // Data-anchored query: guaranteed non-empty result.
            Aabb::cube(c.segments()[0].geom.center(), half),
        ];
        assert_backends_match_scan(c.segments(), &queries, cap)?;
    }

    #[test]
    fn backends_agree_on_degenerate_queries(
        segments in segment_soup(),
        (px, py, pz) in (-70.0..70.0, -70.0..70.0, -70.0..70.0),
    ) {
        let p = Vec3::new(px, py, pz);
        let queries = [
            Aabb::point(p),                                  // zero extent
            Aabb::new(p, p + Vec3::new(30.0, 0.0, 0.0)),     // 1-D sliver
            Aabb::new(p, p + Vec3::new(20.0, 20.0, 0.0)),    // 2-D slab
            Aabb::new(p, p - Vec3::splat(1.0)),              // inverted: empty
            Aabb::EMPTY,                                     // canonical empty
        ];
        assert_backends_match_scan(&segments, &queries, 16)?;
    }

    /// The ISSUE 2 acceptance property: for every backend, a sharded
    /// executor over random circuits returns byte-identical sorted result
    /// sets to the monolithic index, for any shard/thread configuration.
    #[test]
    fn sharded_matches_monolithic_on_random_circuits(
        seed in 0u64..3000,
        neurons in 2u32..8,
        half in 2.0..45.0f64,
        shards in 1usize..9,
        threads in 1usize..5,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let params = IndexParams::with_page_capacity(32).sharded(shards).threaded(threads);
        let queries = [
            Aabb::cube(c.bounds().center(), half),
            Aabb::cube(c.segments()[0].geom.center(), half),
            Aabb::EMPTY,
        ];
        for backend in IndexBackend::ALL {
            let mono = backend.build(c.segments().to_vec(), &params);
            let sharded = backend.build_sharded(c.segments().to_vec(), &params);
            prop_assert_eq!(sharded.len(), mono.len(), "{} len", backend);
            for q in &queries {
                let m = mono.range_query(q);
                let s = sharded.range_query(q);
                prop_assert_eq!(
                    s.sorted_ids(), m.sorted_ids(),
                    "{} sharded({}) disagrees with monolithic at {}", backend, shards, q
                );
                prop_assert_eq!(s.stats.results, m.stats.results, "{} result stats", backend);
            }
        }
    }

    #[test]
    fn sharded_matches_monolithic_on_random_soups(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..5),
        shards in 1usize..8,
    ) {
        let params = IndexParams::with_page_capacity(16).sharded(shards).threaded(3);
        for backend in IndexBackend::ALL {
            let mono = backend.build(segments.clone(), &params);
            let sharded = backend.build_sharded(segments.clone(), &params);
            // Batched execution obeys the same contract, in input order.
            let batch = sharded.range_query_many(&queries);
            prop_assert_eq!(batch.len(), queries.len());
            for (out, q) in batch.iter().zip(&queries) {
                prop_assert_eq!(
                    out.sorted_ids(), mono.range_query(q).sorted_ids(),
                    "{} sharded({}) batch at {}", backend, shards, q
                );
            }
        }
    }

    #[test]
    fn sharded_knn_matches_monolithic(
        segments in segment_soup(),
        (px, py, pz) in (-70.0..70.0, -70.0..70.0, -70.0..70.0),
        k in 0usize..40,
        shards in 1usize..8,
    ) {
        let p = Vec3::new(px, py, pz);
        let params = IndexParams::with_page_capacity(16).sharded(shards).threaded(2);
        for backend in IndexBackend::ALL {
            let mono = backend.build(segments.clone(), &params);
            let sharded = backend.build_sharded(segments.clone(), &params);
            let (m, _) = mono.knn(p, k);
            let (s, stats) = sharded.knn(p, k);
            prop_assert_eq!(s.len(), k.min(segments.len()), "{} knn size", backend);
            prop_assert_eq!(stats.results as usize, s.len(), "{} knn stats", backend);
            let mids: Vec<u64> = m.iter().map(|n| n.segment.id).collect();
            let sids: Vec<u64> = s.iter().map(|n| n.segment.id).collect();
            prop_assert_eq!(sids, mids, "{} sharded({}) knn order", backend, shards);
        }
    }

    #[test]
    fn backends_agree_on_coincident_segments(
        n in 1usize..120,
        cap in 4usize..32,
    ) {
        // Everything at the same point: worst case for KD cuts (R+) and
        // page packing (FLAT). Replication/dedup must not change answers.
        let segments: Vec<NeuronSegment> = (0..n)
            .map(|i| NeuronSegment {
                id: i as u64,
                neuron: i as u32,
                section: 0,
                index_on_section: 0,
                geom: Segment::new(Vec3::splat(5.0), Vec3::splat(5.0), 0.5),
            })
            .collect();
        let queries = [Aabb::cube(Vec3::splat(5.0), 1.0), Aabb::cube(Vec3::splat(50.0), 1.0)];
        assert_backends_match_scan(&segments, &queries, cap)?;
    }
}

#[test]
fn backends_handle_the_empty_dataset() {
    let queries = [Aabb::cube(Vec3::ZERO, 10.0), Aabb::point(Vec3::splat(3.0)), Aabb::EMPTY];
    let params = IndexParams::default();
    for backend in IndexBackend::ALL {
        let index = backend.build(Vec::new(), &params);
        assert!(index.is_empty(), "{backend}");
        for q in &queries {
            let out = index.range_query(q);
            assert!(out.is_empty(), "{backend} on {q}");
            assert_eq!(out.stats.results, 0, "{backend} stats on {q}");
        }
    }
}

#[test]
fn builder_selected_backends_pass_equivalence_too() {
    // The same contract holds end-to-end through NeuroDbBuilder::backend.
    let c = CircuitBuilder::new(44).neurons(5).build();
    let q = Aabb::cube(c.bounds().center(), 30.0);
    let want = scan_ids(c.segments(), &q);
    for backend in IndexBackend::ALL {
        let db = NeuroDb::builder().circuit(&c).backend(backend).build().expect("valid");
        assert_eq!(db.range_query(&q).sorted_ids(), want, "{backend} via builder");
    }
}
