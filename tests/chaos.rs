//! The chaos contract: under **any** seeded [`FaultPlan`], every query
//! against a paged FLAT index terminates with one of exactly three
//! outcomes — byte-identical results, a typed error, or a correctly
//! labeled partial result. Never a panic, never a hang, never silent
//! corruption.
//!
//! Fault schedules are pure data (seed → injections), so every red run
//! here is replayable: each test writes the plan it is about to
//! exercise to `target/chaos/<test>.txt` and removes the file on
//! success. A failing run leaves the dump behind for CI to archive;
//! rerun with `CHAOS_SEED=<seed>` to reproduce locally.

use neurospatial::flat::FlatQueryStats;
use neurospatial::prelude::*;
use neurospatial::scout::ooc::write_flat_index;
use neurospatial::scout::{OocConfig, OocFlatIndex, OocScratch};
use neurospatial::storage::{FaultFile, FaultPlan, StorageError};
use neurospatial::Flow;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Base seed for the deterministic storms: `CHAOS_SEED` env override,
/// fixed default. CI pins three values so red runs name their seed.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FF_EE00_D00D)
}

/// splitmix64, locally: derive per-round seeds without correlating
/// rounds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Process-unique scratch path, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        ScratchFile(
            std::env::temp_dir()
                .join(format!("neurospatial-chaos-{tag}-{}-{n}.flatpages", std::process::id())),
        )
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// The replay breadcrumb: the plan about to run, written before the
/// assertions, deleted only if the whole test passes.
struct PlanDump(PathBuf);

impl PlanDump {
    fn new(test: &str) -> Self {
        let dir = PathBuf::from("target/chaos");
        std::fs::create_dir_all(&dir).ok();
        PlanDump(dir.join(format!("{test}.txt")))
    }

    fn record(&self, round: u64, plan: &FaultPlan) {
        let body = format!(
            "CHAOS_SEED={} round={}\n{}\nreplay: CHAOS_SEED={} cargo test --test chaos\n",
            chaos_seed(),
            round,
            plan.dump(),
            chaos_seed()
        );
        std::fs::write(&self.0, body).ok();
    }

    fn success(self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A deterministic workload for one round: a circuit spilled to a page
/// file plus query boxes that hit everything, something, and nothing.
struct Workload {
    file: ScratchFile,
    queries: Vec<Aabb>,
    pages: u64,
}

fn workload(seed: u64, tag: &str) -> Workload {
    let circuit = CircuitBuilder::new(seed % 10_000).neurons(3 + (seed % 6) as u32).build();
    let capacity = 8 + (mix(seed, 1) % 24) as usize;
    let index = FlatIndex::build(
        circuit.segments().to_vec(),
        FlatBuildParams::default().with_page_capacity(capacity),
    );
    let file = ScratchFile::new(tag);
    write_flat_index(&index, &file.0).expect("write page file");
    let c = circuit.bounds().center();
    let queries = vec![
        index.bounds(),                                         // everything
        Aabb::cube(c, 12.0),                                    // a core slab
        Aabb::cube(c + Vec3::new(9.0, -7.0, 4.0), 5.0),         // off-center
        Aabb::cube(c + Vec3::new(4000.0, 4000.0, 4000.0), 1.0), // nothing
    ];
    Workload { file, queries, pages: index.page_count() as u64 }
}

/// Fault-free reference answers (and their logical stats) for a
/// workload, via the same paged engine.
fn reference(w: &Workload) -> Vec<(Vec<NeuronSegment>, FlatQueryStats)> {
    let clean = OocFlatIndex::open(&w.file.0, OocConfig::default().with_frame_budget(2))
        .expect("clean open");
    let mut scratch = OocScratch::new();
    w.queries
        .iter()
        .map(|q| {
            let mut out = Vec::new();
            let stats = clean.range_query_into(q, &mut scratch, &mut out).expect("clean query");
            (out, stats.flat)
        })
        .collect()
}

/// Transient-only storms — EINTR bursts, timeouts, short reads, all
/// bounded below the retry budget — must be **invisible**: every query
/// returns byte-identical results with identical logical stats, nothing
/// is quarantined, and across the storm the retry path demonstrably
/// fired.
#[test]
fn transient_storms_recover_byte_identical_results() {
    let dump = PlanDump::new("transient_storms");
    let base = chaos_seed();
    let mut retries = 0u64;
    for round in 0..6u64 {
        let seed = mix(base, round);
        let w = workload(seed, "transient");
        let want = reference(&w);

        let plan = FaultPlan::new(seed)
            .with_transient_permille(350)
            .with_max_consecutive(1 + (round % 3) as u32);
        assert!(plan.is_transient_only());
        dump.record(round, &plan);

        // Budget 1 maximises re-reads (every page load evicts), and odd
        // rounds add a prefetch worker racing the demand reads through
        // the same fault schedule.
        let cfg =
            OocConfig::default().with_frame_budget(1).with_prefetch_workers((round % 2) as usize);
        let injected = plan.clone();
        let faulty =
            OocFlatIndex::open_with(&w.file.0, cfg, move |f| Arc::new(FaultFile::new(f, injected)))
                .expect("transient-only plans must survive the validating open");

        let mut scratch = OocScratch::new();
        let mut got = Vec::new();
        for (q, (want_segments, want_stats)) in w.queries.iter().zip(&want) {
            let stats = faulty
                .range_query_into(q, &mut scratch, &mut got)
                .expect("transient faults must be retried, not surfaced");
            assert_eq!(&got, want_segments, "round {round} at {q}: results diverge");
            assert_eq!(&stats.flat, want_stats, "round {round} at {q}: logical stats diverge");
            retries += stats.io.retries;
        }
        assert!(faulty.quarantined_pages().is_empty(), "round {round}: spurious quarantine");
        faulty.validate_pages().expect("a transient-only file re-validates clean");
    }
    assert!(retries > 0, "the storm never exercised the retry path — injection is dead");
    dump.success();
}

/// Plans with permanently corrupt pages: the validating open reports
/// the **full** blast radius as one typed error; a lazy open serves
/// strict queries that either avoid the rot (byte-identical) or fail
/// typed; partial mode completes with the loss labeled and every
/// returned segment byte-equal to the reference. No other outcome.
#[test]
fn corrupt_pages_fail_typed_or_degrade_labeled() {
    let dump = PlanDump::new("corrupt_pages");
    let base = mix(chaos_seed(), 0xDEAD);
    let mut rounds_with_pages = 0u64;
    for round in 0..6u64 {
        let seed = mix(base, round);
        let w = workload(seed, "corrupt");
        if w.pages < 2 {
            continue;
        }
        rounds_with_pages += 1;
        let want = reference(&w);

        let mut corrupt = vec![mix(seed, 2) % w.pages, mix(seed, 3) % w.pages];
        corrupt.sort_unstable();
        corrupt.dedup();
        let plan = FaultPlan::new(seed)
            .with_transient_permille(200)
            .with_max_consecutive(2)
            .with_corrupt_pages(corrupt.clone());
        assert!(!plan.is_transient_only());
        dump.record(round, &plan);

        // A validating open must name every rotten page, not just the
        // first one it trips over.
        let sweep = plan.clone();
        match OocFlatIndex::open_with(&w.file.0, OocConfig::default(), move |f| {
            Arc::new(FaultFile::new(f, sweep))
        }) {
            Err(StorageError::BadPages { pages }) => {
                assert_eq!(pages, corrupt, "round {round}: incomplete blast radius")
            }
            other => panic!("round {round}: validating open must report BadPages, got {other:?}"),
        }

        // Lazy open: queries meet the rot at demand-read time.
        let cfg = OocConfig { validate_pages: false, ..OocConfig::default() }.with_frame_budget(2);
        let lazy = plan.clone();
        let faulty =
            OocFlatIndex::open_with(&w.file.0, cfg, move |f| Arc::new(FaultFile::new(f, lazy)))
                .expect("lazy open skips the sweep");

        let mut scratch = OocScratch::new();
        let mut got = Vec::new();
        for (q, (want_segments, _)) in w.queries.iter().zip(&want) {
            match faulty.range_query_into(q, &mut scratch, &mut got) {
                // The crawl never reached a corrupt page: exactness holds.
                Ok(_) => assert_eq!(&got, want_segments, "round {round} at {q}"),
                // It did: the error must be the typed corruption pair.
                Err(
                    StorageError::PageChecksum { .. }
                    | StorageError::Corrupt(_)
                    | StorageError::Quarantined { .. },
                ) => {}
                Err(other) => panic!("round {round} at {q}: untyped failure {other:?}"),
            }
        }

        // Partial mode on the everything-box: completes, labels the
        // loss, and every segment it does return is byte-true.
        let by_id: HashMap<u64, &NeuronSegment> = want[0].0.iter().map(|s| (s.id, s)).collect();
        got.clear();
        let stats = faulty
            .range_query_stream_partial(
                &w.queries[0],
                &mut scratch,
                true,
                |_| {},
                |s| {
                    got.push(*s);
                    Flow::Emit
                },
            )
            .expect("partial mode must complete over corrupt pages");
        assert!(stats.io.pages_quarantined >= 1, "round {round}: loss went unlabeled");
        assert!(got.len() < want[0].0.len(), "round {round}: nothing was actually lost");
        for s in &got {
            assert_eq!(Some(&s), by_id.get(&s.id).copied().as_ref(), "round {round}: byte drift");
        }
        // The quarantine set is exactly rot, never healthy pages.
        let quarantined = faulty.quarantined_pages();
        assert!(!quarantined.is_empty());
        for page in &quarantined {
            assert!(corrupt.contains(page), "round {round}: healthy page {page} quarantined");
        }

        // Strict queries over the now-quarantined everything-box fail
        // with the quarantine error — degradation is sticky and typed.
        match faulty.range_query_into(&w.queries[0], &mut scratch, &mut got) {
            Err(StorageError::Quarantined { pages }) => {
                assert!(!pages.is_empty(), "round {round}");
                for page in &pages {
                    assert!(quarantined.contains(page), "round {round}: page {page} not rotten");
                }
            }
            other => panic!("round {round}: strict-after-quarantine gave {other:?}"),
        }
    }
    assert!(rounds_with_pages >= 3, "workloads too small to exercise corruption");
    dump.success();
}

fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    prop::collection::vec(
        ((-60.0..60.0, -60.0..60.0, -60.0..60.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..2.0f64),
        1..140,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), (dx, dy, dz), r))| {
                let p0 = Vec3::new(x, y, z);
                NeuronSegment {
                    id: i as u64,
                    neuron: (i % 5) as u32,
                    section: (i % 4) as u32,
                    index_on_section: i as u32,
                    geom: Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r),
                }
            })
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.5..50.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same recovery contract over *arbitrary* segment soups, page
    /// capacities and plan parameters: any bounded transient schedule
    /// is invisible to query results.
    #[test]
    fn any_bounded_transient_plan_is_invisible(
        segments in segment_soup(),
        (queries, capacity) in (prop::collection::vec(query_box(), 1..5), 1usize..40),
        (seed, permille, burst) in (any::<u64>(), 50u32..600, 1u32..=3),
    ) {
        let index = FlatIndex::build(
            segments,
            FlatBuildParams::default().with_page_capacity(capacity),
        );
        let file = ScratchFile::new("prop");
        write_flat_index(&index, &file.0).expect("write page file");
        let clean = OocFlatIndex::open(&file.0, OocConfig::default().with_frame_budget(1))
            .expect("clean open");
        let plan = FaultPlan::new(seed)
            .with_transient_permille(permille)
            .with_max_consecutive(burst);
        prop_assert!(plan.is_transient_only());
        let injected = plan.clone();
        let faulty = OocFlatIndex::open_with(
            &file.0,
            OocConfig::default().with_frame_budget(1),
            move |f| Arc::new(FaultFile::new(f, injected)),
        )
        .expect("transient-only open");
        let mut scratch = OocScratch::new();
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for q in &queries {
            let want_stats = clean.range_query_into(q, &mut scratch, &mut want).expect("clean");
            let got_stats = faulty.range_query_into(q, &mut scratch, &mut got).expect("faulty");
            prop_assert_eq!(&got, &want, "plan {} at {}", plan.dump(), q);
            prop_assert_eq!(&got_stats.flat, &want_stats.flat, "plan {} at {}", plan.dump(), q);
        }
        prop_assert!(faulty.quarantined_pages().is_empty());
    }
}
