//! Join-engine equivalence properties: the rebuilt cache-conscious TOUCH
//! pipeline (scratch path, parallel path at random thread counts, forced
//! bucket-sweep path), the classic pointer-walking TOUCH it replaced,
//! PBSM, the plane sweep and the nested loop must all produce the
//! identical sorted pair relation — on random segment clouds, at ε = 0,
//! and on heavily overlapping inputs.

use neurospatial::touch::{
    ClassicTouchJoin, JoinScratch, NestedLoopJoin, PbsmJoin, PlaneSweepJoin, SpatialJoin,
    TouchEngine, TouchJoin,
};
use neurospatial_geom::{Segment, Vec3};
use proptest::prelude::*;

/// Random capsule segments inside a cube of the given half extent: the
/// smaller the volume, the denser the overlap.
fn segment_cloud(n: usize, half: f64) -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(
        ((-1.0..1.0, -1.0..1.0, -1.0..1.0), (-6.0..6.0, -6.0..6.0, -6.0..6.0), 0.05..1.2f64)
            .prop_map(move |((x, y, z), (dx, dy, dz), r)| {
                let p0 = Vec3::new(x * half, y * half, z * half);
                Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r)
            }),
        0..n,
    )
}

fn check_all(a: &[Segment], b: &[Segment], eps: f64, threads: usize) -> Result<(), TestCaseError> {
    let want = NestedLoopJoin.join(a, b, eps).sorted_pairs();

    // Classic pointer-walk path (sequential and parallel).
    prop_assert_eq!(&ClassicTouchJoin::default().join(a, b, eps).sorted_pairs(), &want);
    prop_assert_eq!(&ClassicTouchJoin::parallel(threads).join(a, b, eps).sorted_pairs(), &want);

    // Rebuilt engine through the trait (fresh scratch per call).
    prop_assert_eq!(&TouchJoin::default().join(a, b, eps).sorted_pairs(), &want);
    prop_assert_eq!(&TouchJoin::parallel(threads).join(a, b, eps).sorted_pairs(), &want);
    prop_assert_eq!(&TouchJoin::default().with_sweep_min(2).join(a, b, eps).sorted_pairs(), &want);

    // Rebuilt engine through the explicit scratch path, reusing one
    // scratch and output buffer across sequential + parallel runs.
    if !a.is_empty() {
        let engine = TouchEngine::build(a, 16);
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        for t in [1, threads] {
            engine.join_into(b, eps, t, 32, &mut scratch, &mut out);
            out.sort_unstable();
            prop_assert_eq!(&out, &want, "scratch path, {} thread(s)", t);
        }
    }

    // The baselines.
    prop_assert_eq!(&PlaneSweepJoin.join(a, b, eps).sorted_pairs(), &want);
    prop_assert_eq!(
        &PbsmJoin { objects_per_cell: 8, max_cells_per_axis: 24 }.join(a, b, eps).sorted_pairs(),
        &want
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_join_paths_agree_on_random_clouds(
        a in segment_cloud(60, 30.0),
        b in segment_cloud(60, 30.0),
        eps in 0.0..4.0f64,
        threads in 1usize..8,
    ) {
        check_all(&a, &b, eps, threads)?;
    }

    #[test]
    fn all_join_paths_agree_at_epsilon_zero(
        a in segment_cloud(50, 20.0),
        b in segment_cloud(50, 20.0),
        threads in 1usize..8,
    ) {
        check_all(&a, &b, 0.0, threads)?;
    }

    #[test]
    fn all_join_paths_agree_on_heavy_overlap(
        // Everything crammed into a tiny volume: nearly every pair
        // qualifies, buckets are huge, and the hybrid sweep engages.
        a in segment_cloud(45, 3.0),
        b in segment_cloud(45, 3.0),
        eps in 0.0..2.0f64,
        threads in 1usize..8,
    ) {
        check_all(&a, &b, eps, threads)?;
    }
}
