//! The hot-path equivalence property suite: the allocation-free
//! `*_into_scratch` query paths must be **byte-identical** — same result
//! segments, in the same order, with the same unified statistics — to the
//! allocating paths, for every backend, monolithic and sharded, across
//! random circuits, random segment soups, and repeated reuse of one
//! scratch over many queries (the epoch-stamped visited marks must never
//! leak state from one query into the next).
//!
//! This is the contract that lets servers and benches switch to the
//! scratch paths without re-validating answers: the fast lane is not a
//! different query engine, just a different memory discipline.

use neurospatial::prelude::*;
use proptest::prelude::*;

/// Every backend configuration under test: the four monolithic backends
/// plus a sharded executor over each.
fn all_configs(
    segments: &[NeuronSegment],
    params: &IndexParams,
) -> Vec<(String, Box<dyn SpatialIndex>)> {
    let mut out: Vec<(String, Box<dyn SpatialIndex>)> = Vec::new();
    for b in IndexBackend::ALL {
        out.push((b.name().to_string(), b.build(segments.to_vec(), params)));
        out.push((b.sharded_name(), b.build_sharded(segments.to_vec(), params)));
    }
    out
}

/// The shared checker: one scratch reused across every query of every
/// backend, two passes over the query list (pass 2 runs with buffers the
/// earlier queries already dirtied — exactly the steady state hot loops
/// run in).
fn assert_scratch_paths_match(
    segments: &[NeuronSegment],
    queries: &[Aabb],
    params: &IndexParams,
) -> Result<(), TestCaseError> {
    let mut scratch = QueryScratch::new();
    let mut buf: Vec<NeuronSegment> = Vec::new();
    for (name, index) in all_configs(segments, params) {
        for pass in 0..2 {
            for q in queries {
                let want = index.range_query(q);
                buf.clear();
                let stats = index.range_query_into_scratch(q, &mut scratch, &mut buf);
                prop_assert_eq!(
                    stats,
                    want.stats,
                    "{} pass {}: scratch stats diverge at {}",
                    &name,
                    pass,
                    q
                );
                prop_assert_eq!(buf.len(), want.segments.len(), "{} at {}", &name, q);
                for (got, expected) in buf.iter().zip(&want.segments) {
                    prop_assert_eq!(got.id, expected.id, "{} order diverges at {}", &name, q);
                }
            }
        }
    }
    Ok(())
}

fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    prop::collection::vec(
        ((-60.0..60.0, -60.0..60.0, -60.0..60.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..2.0f64),
        0..220,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), (dx, dy, dz), r))| {
                let p0 = Vec3::new(x, y, z);
                NeuronSegment {
                    id: i as u64,
                    neuron: (i % 5) as u32,
                    section: (i % 4) as u32,
                    index_on_section: i as u32,
                    geom: Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r),
                }
            })
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.5..50.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The ISSUE 3 acceptance property: buffer-reusing queries are
    /// byte-identical to the allocating path on every backend, monolithic
    /// and sharded, across random circuits and repeated scratch reuse.
    #[test]
    fn scratch_paths_match_on_random_circuits(
        seed in 0u64..3000,
        neurons in 2u32..8,
        half in 2.0..45.0f64,
        cap in 8usize..80,
        shards in 1usize..7,
        threads in 1usize..4,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let params = IndexParams::with_page_capacity(cap).sharded(shards).threaded(threads);
        let queries = [
            Aabb::cube(c.bounds().center(), half),
            Aabb::cube(c.segments()[0].geom.center(), half), // non-empty result
            Aabb::EMPTY,
        ];
        assert_scratch_paths_match(c.segments(), &queries, &params)?;
    }

    #[test]
    fn scratch_paths_match_on_random_soups(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..6),
        shards in 1usize..7,
    ) {
        let params = IndexParams::with_page_capacity(16).sharded(shards).threaded(2);
        assert_scratch_paths_match(&segments, &queries, &params)?;
    }

    /// KNN through the scratch path returns the identical canonical
    /// neighbour list and statistics as the allocating `knn` on every
    /// backend (the sequential sharded merge must agree with the
    /// parallel one).
    #[test]
    fn scratch_knn_matches_allocating_knn(
        segments in segment_soup(),
        (px, py, pz) in (-70.0..70.0, -70.0..70.0, -70.0..70.0),
        k in 0usize..30,
        shards in 1usize..6,
        threads in 1usize..4,
    ) {
        let p = Vec3::new(px, py, pz);
        let params = IndexParams::with_page_capacity(16).sharded(shards).threaded(threads);
        let mut scratch = QueryScratch::new();
        let mut out: Vec<Neighbor> = Vec::new();
        for (name, index) in all_configs(&segments, &params) {
            let (want, want_stats) = index.knn(p, k);
            for pass in 0..2 {
                out.clear();
                let stats = index.knn_into_scratch(p, k, &mut scratch, &mut out);
                prop_assert_eq!(stats, want_stats, "{} pass {}: knn stats", &name, pass);
                prop_assert_eq!(out.len(), want.len(), "{}", &name);
                for (got, expected) in out.iter().zip(&want) {
                    prop_assert_eq!(got.segment.id, expected.segment.id, "{} knn order", &name);
                    prop_assert!(
                        got.distance.to_bits() == expected.distance.to_bits(),
                        "{} knn distances byte-identical", &name
                    );
                }
            }
        }
    }

    /// Batched queries (which reuse one scratch per worker under the
    /// hood) agree with one-at-a-time allocating queries, in input order.
    #[test]
    fn batched_queries_match_singles(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..5),
        shards in 1usize..6,
        threads in 1usize..4,
    ) {
        let params = IndexParams::with_page_capacity(24).sharded(shards).threaded(threads);
        for (name, index) in all_configs(&segments, &params) {
            let batch = index.range_query_many(&queries);
            prop_assert_eq!(batch.len(), queries.len());
            for (out, q) in batch.iter().zip(&queries) {
                let want = index.range_query(q);
                prop_assert_eq!(out.stats, want.stats, "{} batch stats at {}", &name, q);
                prop_assert_eq!(
                    out.sorted_ids(), want.sorted_ids(),
                    "{} batch results at {}", &name, q
                );
            }
        }
    }
}

#[test]
fn scratch_paths_handle_empty_and_degenerate_inputs() {
    let params = IndexParams::default().sharded(3).threaded(2);
    let mut scratch = QueryScratch::new();
    let mut buf = Vec::new();
    for (name, index) in all_configs(&[], &params) {
        for q in [Aabb::cube(Vec3::ZERO, 10.0), Aabb::EMPTY, Aabb::point(Vec3::splat(2.0))] {
            buf.clear();
            let stats = index.range_query_into_scratch(&q, &mut scratch, &mut buf);
            assert!(buf.is_empty(), "{name} on {q}");
            assert_eq!(stats, QueryStats::default(), "{name} on {q}");
        }
        let mut out = Vec::new();
        assert_eq!(index.knn_into_scratch(Vec3::ZERO, 4, &mut scratch, &mut out).results, 0);
        assert!(out.is_empty(), "{name} knn on empty index");
    }
}
