//! The out-of-core equivalence property suite: FLAT spilled to a real
//! page file and queried through the bounded frame pool must be
//! **byte-identical** — same result segments, in the same order, with
//! the same logical seed-and-crawl statistics — to the in-memory FLAT
//! index, across random segment soups, random page capacities and every
//! interesting frame budget (including a single frame, where every page
//! read evicts the previous page).
//!
//! This is the contract that makes spilling safe: out-of-core mode is
//! not a different query engine, just a different residency discipline.
//! Only the physical `cache_*` counters may differ from in-memory runs.

use neurospatial::prelude::*;
use neurospatial::scout::ooc::write_flat_index;
use neurospatial::scout::{OocConfig, OocFlatIndex, OocScratch};
use neurospatial::storage::FramePool;
use proptest::prelude::*;
use std::path::PathBuf;

/// Process-unique scratch path, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        ScratchFile(
            std::env::temp_dir()
                .join(format!("neurospatial-ooc-eq-{tag}-{}-{n}.flatpages", std::process::id())),
        )
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    prop::collection::vec(
        ((-60.0..60.0, -60.0..60.0, -60.0..60.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..2.0f64),
        0..180,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), (dx, dy, dz), r))| {
                let p0 = Vec3::new(x, y, z);
                NeuronSegment {
                    id: i as u64,
                    neuron: (i % 5) as u32,
                    section: (i % 4) as u32,
                    index_on_section: i as u32,
                    geom: Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r),
                }
            })
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.5..50.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

/// The frame budgets worth exercising for a file of `pages` pages:
/// one frame (max eviction pressure), two, half, and everything.
fn budgets(pages: usize) -> Vec<usize> {
    let mut b = vec![1, 2, (pages / 2).max(1), 0];
    b.dedup();
    b
}

/// Check one (segments, queries, capacity) case under every budget: the
/// paged index must match the in-memory one result-for-result and
/// logical-counter-for-logical-counter, reusing one scratch across the
/// whole query list both times.
fn assert_paged_matches_memory(
    segments: &[NeuronSegment],
    queries: &[Aabb],
    page_capacity: usize,
) -> Result<(), TestCaseError> {
    let params = FlatBuildParams::default().with_page_capacity(page_capacity);
    let mem: FlatIndex<NeuronSegment> = FlatIndex::build(segments.to_vec(), params);
    let file = ScratchFile::new("prop");
    write_flat_index(&mem, &file.0).expect("write page file");
    for budget in budgets(mem.page_count()) {
        let paged = OocFlatIndex::open(&file.0, OocConfig::default().with_frame_budget(budget))
            .expect("open page file");
        let mut mem_scratch = FlatScratch::default();
        let mut ooc_scratch = OocScratch::new();
        let mut want: Vec<NeuronSegment> = Vec::new();
        let mut got: Vec<NeuronSegment> = Vec::new();
        for q in queries {
            want.clear();
            let want_stats = mem.range_query_scratch(
                q,
                &mut mem_scratch,
                |_| {},
                |s| {
                    want.push(*s);
                },
            );
            let got_stats = paged
                .range_query_into(q, &mut ooc_scratch, &mut got)
                .expect("validated file cannot fail");
            prop_assert_eq!(
                &got_stats.flat,
                &want_stats,
                "budget {} at {}: logical stats diverge",
                budget,
                q
            );
            prop_assert_eq!(got.len(), want.len(), "budget {} at {}", budget, q);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.id, w.id, "budget {} at {}: order diverges", budget, q);
            }
        }
    }
    Ok(())
}

// Re-exported by the flat crate; imported here for the scratch-path
// reference runs.
use neurospatial::flat::FlatScratch;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random soups, random page capacity, random queries: paged FLAT is
    /// byte-identical to in-memory FLAT under every frame budget.
    #[test]
    fn paged_flat_is_byte_identical_to_memory(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..7),
        capacity in 1usize..48,
    ) {
        assert_paged_matches_memory(&segments, &queries, capacity)?;
    }

    /// The facade lane: a paged database and an in-memory database give
    /// identical answers to interleaved range and knn queries, with
    /// identical logical statistics.
    #[test]
    fn paged_database_facade_is_equivalent(
        seed in 0u64..200,
        neurons in 2u32..8,
        radius in 3.0..45.0f64,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let mem = NeuroDb::from_circuit(&c);
        let ooc = NeuroDb::builder()
            .circuit(&c)
            .paged(true)
            .frame_budget(1)
            .build()
            .expect("paged build");
        let q = Aabb::cube(c.bounds().center(), radius);
        let (want, got) = (mem.range_query(&q), ooc.range_query(&q));
        prop_assert_eq!(want.sorted_ids(), got.sorted_ids());
        prop_assert_eq!(want.stats.results, got.stats.results);
        prop_assert_eq!(want.stats.nodes_read, got.stats.nodes_read);
        prop_assert_eq!(want.stats.objects_tested, got.stats.objects_tested);
        prop_assert_eq!(want.stats.reseeds, got.stats.reseeds);
        // KNN rides the shared trait default over the paged range path,
        // so neighbours and distances are identical too.
        let p = c.bounds().center();
        let (wn, _) = mem.knn(p, 7);
        let (gn, _) = ooc.knn(p, 7);
        prop_assert_eq!(wn.len(), gn.len());
        for (w, g) in wn.iter().zip(&gn) {
            prop_assert_eq!(w.segment.id, g.segment.id);
            prop_assert_eq!(w.distance, g.distance);
        }
    }
}

/// Interleaving range queries, knn probes and a prefetching walkthrough
/// on ONE paged database must not corrupt any of them: the walkthrough's
/// background prefetches race the demand reads through the same pool.
#[test]
fn interleaved_range_knn_walkthrough_stays_exact() {
    let c = CircuitBuilder::new(21).neurons(10).build();
    let mem = NeuroDb::from_circuit(&c);
    let ooc = NeuroDb::builder()
        .circuit(&c)
        .paged(true)
        .frame_budget(4)
        .prefetch_workers(2)
        .build()
        .expect("paged build");
    let path = mem.navigation_path(&c, 3, 18.0, 7.0).expect("path");
    let mem_walk = mem.walkthrough(&path, WalkthroughMethod::Scout).expect("mem walkthrough");
    let ooc_walk = ooc.walkthrough(&path, WalkthroughMethod::Scout).expect("ooc walkthrough");
    assert_eq!(mem_walk.steps.len(), ooc_walk.steps.len());
    for (i, (m, o)) in mem_walk.steps.iter().zip(&ooc_walk.steps).enumerate() {
        // Same query boxes, same index layout: each step returns the
        // same results and demands the same pages, whatever the pager.
        assert_eq!(m.results, o.results, "step {i}");
        assert_eq!(m.pages_demanded, o.pages_demanded, "step {i}");
    }
    // And range/knn answers after the walkthrough are still exact.
    for (i, q) in path.queries.iter().enumerate() {
        assert_eq!(
            mem.range_query(q).sorted_ids(),
            ooc.range_query(q).sorted_ids(),
            "query {i} after walkthrough"
        );
    }
    let (wn, _) = mem.knn(c.bounds().center(), 9);
    let (gn, _) = ooc.knn(c.bounds().center(), 9);
    assert_eq!(
        wn.iter().map(|n| n.segment.id).collect::<Vec<_>>(),
        gn.iter().map(|n| n.segment.id).collect::<Vec<_>>()
    );
}

/// Pin guards are the safety contract of the one-frame pool: while a
/// guard is alive its frame cannot be evicted, a second distinct page
/// request must report budget exhaustion rather than invalidate the
/// guard, and dropping the guard restores progress.
#[test]
fn pin_guards_protect_frames_under_a_one_frame_budget() {
    use neurospatial::storage::{EvictionPolicy, StorageError};
    let c = CircuitBuilder::new(9).neurons(4).build();
    let index =
        FlatIndex::build(c.segments().to_vec(), FlatBuildParams::default().with_page_capacity(16));
    assert!(index.page_count() >= 2);
    let file = ScratchFile::new("pins");
    write_flat_index(&index, &file.0).expect("write");
    let paged =
        OocFlatIndex::open(&file.0, OocConfig::default().with_frame_budget(1)).expect("open");
    let pool = FramePool::new(1, EvictionPolicy::Clock);
    let disk = neurospatial::storage::PageFile::open(&file.0).expect("page file");
    let guard = pool.get(0, &disk).expect("load page 0");
    let before: Vec<u8> = guard.to_vec();
    // The only frame is pinned: a different page cannot be admitted.
    let err = pool.get(1, &disk).expect_err("no frame available");
    assert_eq!(err, StorageError::FrameBudgetExhausted { frames: 1 });
    // Re-requesting the pinned page is fine (shared pins).
    let again = pool.get(0, &disk).expect("pinned page re-request");
    assert_eq!(&*again, &before[..], "pinned frame bytes are stable");
    drop(again);
    drop(guard);
    // Unpinned: page 1 can now evict page 0.
    let other = pool.get(1, &disk).expect("evict and load");
    assert_eq!(other.len(), before.len());
    drop(other);
    // The paged engine holds pins only while scanning one page, so a
    // one-frame engine still answers every query.
    let q = index.bounds();
    let mut scratch = OocScratch::new();
    let mut out = Vec::new();
    let stats = paged.range_query_into(&q, &mut scratch, &mut out).expect("one-frame query");
    assert_eq!(out.len(), index.len());
    assert_eq!(stats.flat.results as usize, index.len());
    assert!(stats.io.evictions > 0, "a one-frame crawl must evict");
}
