//! Degenerate inputs and failure paths, end to end: the library must
//! behave predictably at the edges downstream users will hit.

use neurospatial::model::{decode_segments, encode_segments};
use neurospatial::prelude::*;
use std::path::PathBuf;

#[test]
fn single_neuron_circuit_works_everywhere() {
    let c = CircuitBuilder::new(1).neurons(1).build();
    let db = NeuroDb::from_circuit(&c);
    assert!(!db.is_empty());
    let out = db.range_query(&c.bounds().inflate(1.0));
    assert_eq!(out.len(), c.segments().len());
    // One neuron → one population empty → join returns nothing but works.
    let r = db.find_synapse_candidates(5.0).expect("parity populations always exist");
    assert!(r.pairs.is_empty());
}

#[test]
fn zero_extent_query_is_a_point_probe() {
    let c = CircuitBuilder::new(2).neurons(4).build();
    let db = NeuroDb::from_circuit(&c);
    let p = c.segments()[10].geom.center();
    let q = Aabb::point(p);
    let out = db.range_query(&q);
    // At least the segment whose centre we probed intersects.
    assert!(out.segments.iter().any(|s| s.id == c.segments()[10].id));
    let brute = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
    assert_eq!(out.len(), brute);
}

#[test]
fn enormous_epsilon_joins_everything() {
    let c = CircuitBuilder::new(3).neurons(4).build();
    let (a, b) = c.split_populations();
    let a: Vec<_> = a.into_iter().take(50).collect();
    let b: Vec<_> = b.into_iter().take(50).collect();
    let eps = 1e7; // larger than the whole model
    let r = TouchJoin::default().join(&a, &b, eps);
    assert_eq!(r.pairs.len(), a.len() * b.len(), "everything joins everything");
    assert!(r.is_duplicate_free());
    // And the baselines agree even in this extreme.
    assert_eq!(PlaneSweepJoin.join(&a, &b, eps).pairs.len(), r.pairs.len());
    assert_eq!(PbsmJoin::default().join(&a, &b, eps).pairs.len(), r.pairs.len());
}

#[test]
fn walkthrough_of_length_one_path() {
    let c = CircuitBuilder::new(7).neurons(3).build();
    let db = NeuroDb::from_circuit(&c);
    // Manufacture a single-query "path".
    let mut path = db.navigation_path(&c, 1, 15.0, 6.0).expect("path");
    path.queries.truncate(1);
    path.waypoints.truncate(1);
    for m in WalkthroughMethod::ALL {
        let s = db.walkthrough(&path, m).expect("flat backend");
        assert_eq!(s.steps.len(), 1);
        // One query, cold cache: every method pays the same stall.
        assert_eq!(s.total_demand_hits, 0);
    }
}

#[test]
fn disk_faults_propagate_and_recover() {
    let disk = DiskSim::new(u64::MAX, CostModel::default());
    let mut pool = BufferPool::new(16);
    disk.inject_faults(Some(4));
    let mut failures = 0;
    for i in 0..32u64 {
        if pool.get(PageId(i), &disk).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 8);
    // Recovery: disable faults, everything works again.
    disk.inject_faults(None);
    for i in 100..110u64 {
        pool.get(PageId(i), &disk).expect("healthy disk");
    }
}

#[test]
fn corrupted_files_never_panic() {
    let c = CircuitBuilder::new(5).neurons(2).build();
    let good = encode_segments(c.segments());
    // Flip every byte of the header region one at a time.
    for i in 0..16.min(good.len()) {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        let _ = decode_segments(&bad); // must return, not panic
    }
    // Random truncations.
    for len in [0usize, 1, 15, 16, 17, good.len() - 1] {
        let _ = decode_segments(&good[..len]);
    }
}

/// A scratch page-file path unique to this test + process, removed on
/// drop so failed assertions don't leak files between runs.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        ScratchFile(
            std::env::temp_dir()
                .join(format!("neurospatial-failure-{tag}-{}.flatpages", std::process::id())),
        )
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// Write a small but multi-page FLAT page file and return its bytes.
fn valid_page_file(file: &ScratchFile) -> Vec<u8> {
    let c = CircuitBuilder::new(3).neurons(2).build();
    let index =
        FlatIndex::build(c.segments().to_vec(), FlatBuildParams::default().with_page_capacity(16));
    assert!(index.page_count() >= 4, "need a multi-page file to corrupt");
    neurospatial::scout::ooc::write_flat_index(&index, &file.0).expect("write page file");
    std::fs::read(&file.0).expect("read back")
}

#[test]
fn truncated_page_files_are_rejected_with_typed_errors() {
    let file = ScratchFile::new("truncate");
    let good = valid_page_file(&file);
    // Every prefix strictly shorter than the file must fail with a
    // typed storage error — never a panic, never a silent success.
    for len in [0, 1, 8, 63, 64, 80, good.len() / 2, good.len() - 1] {
        std::fs::write(&file.0, &good[..len]).expect("write truncated");
        let err = PagedFlatIndex::open(&file.0, OocConfig::default())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes must not open"));
        assert!(matches!(err, NeuroError::Storage(_)), "len={len}: {err:?}");
    }
}

#[test]
fn bit_flipped_page_files_never_panic_and_never_lie() {
    let file = ScratchFile::new("bitflip");
    let good = valid_page_file(&file);
    // Sample flips across the whole file: the header, the first page's
    // header and payload, and a stride through the page array + meta.
    let mut offsets: Vec<usize> = (0..64).collect();
    offsets.extend((64..good.len()).step_by(97));
    offsets.push(good.len() - 1);
    for off in offsets {
        let mut bad = good.clone();
        bad[off] ^= 0x40;
        std::fs::write(&file.0, &bad).expect("write corrupted");
        // Every mutated byte is either under a checksum (open must fail
        // with a typed error) or in unchecksummed header padding (open
        // may succeed — but then queries must still be exact, which the
        // open-time page validation already proved). Panics fail the
        // test by themselves.
        match PagedFlatIndex::open(&file.0, OocConfig::default()) {
            Err(e) => assert!(matches!(e, NeuroError::Storage(_)), "offset {off}: {e:?}"),
            Ok(index) => {
                let out = index.range_query(&index.bounds());
                assert_eq!(out.len(), index.len(), "offset {off} corrupted results");
            }
        }
    }
}

#[test]
fn foreign_and_wrong_version_page_files_are_rejected() {
    let file = ScratchFile::new("foreign");
    // Not a page file at all.
    std::fs::write(&file.0, b"GIF89a definitely not a page file").expect("write");
    assert!(matches!(
        PagedFlatIndex::open(&file.0, OocConfig::default()),
        Err(NeuroError::Storage(_))
    ));
    // A structurally valid page file whose metadata is not FLAT's.
    let mut w = neurospatial::storage::PageFileWriter::create(&file.0, 256).expect("create");
    w.append_page(&[0u8; 200]).expect("append");
    w.finish(b"someone else's metadata").expect("finish");
    let Err(err) = PagedFlatIndex::open(&file.0, OocConfig::default()) else {
        panic!("foreign metadata must not open");
    };
    assert!(matches!(err, NeuroError::Storage(StorageError::Corrupt(_))), "{err:?}");
}

#[test]
fn missing_page_file_paths_surface_as_io_errors() {
    let path = std::env::temp_dir().join("neurospatial-failure-definitely-missing.flatpages");
    let Err(err) = PagedFlatIndex::open(&path, OocConfig::default()) else {
        panic!("missing file must not open");
    };
    assert!(matches!(err, NeuroError::Storage(StorageError::Io { .. })), "{err:?}");
    // And the same through the database builder's explicit-file lane:
    // the builder *creates* files, so point it at an unwritable path.
    let c = CircuitBuilder::new(3).neurons(1).build();
    let bad_dir = path.join("nested/impossible.flatpages");
    let Err(err) = NeuroDb::builder().circuit(&c).page_file(&bad_dir).build() else {
        panic!("unwritable page-file path must not build");
    };
    assert!(matches!(err, NeuroError::Storage(StorageError::Io { .. })), "{err:?}");
}

#[test]
fn queries_far_outside_the_model_are_cheap_and_empty() {
    let c = CircuitBuilder::new(9).neurons(6).build();
    let db = NeuroDb::from_circuit(&c);
    let far = Aabb::cube(Vec3::splat(1e9), 100.0);
    let out = db.range_query(&far);
    assert!(out.is_empty());
    // Root/seed check proves emptiness with only seed-tree reads, no
    // data-page I/O.
    let flat = db.flat_index().expect("default backend is FLAT");
    let (_, fstats) = flat.range_query(&far);
    assert_eq!(fstats.pages_read, 0, "root check proves emptiness without I/O");
    assert_eq!(db.region_stats(&far), neurospatial::RegionStats::default());
}

#[test]
fn flat_handles_pathological_coincident_objects() {
    // Thousands of identical segments at one point: every page has the
    // same MBR (total overlap), the crawl must still terminate and be
    // exact.
    let seg = Segment::new(Vec3::ONE, Vec3::new(1.0, 2.0, 1.0), 0.3);
    let objs: Vec<NeuronSegment> = (0..5000)
        .map(|i| NeuronSegment {
            id: i,
            neuron: 0,
            section: 0,
            index_on_section: i as u32,
            geom: seg,
        })
        .collect();
    let idx = FlatIndex::build(objs, FlatBuildParams::default().with_page_capacity(32));
    let (hits, stats) = idx.range_query(&Aabb::cube(Vec3::ONE, 0.5));
    assert_eq!(hits.len(), 5000);
    assert_eq!(stats.pages_read, idx.page_count() as u64);
}

#[test]
fn rtree_handles_pathological_coincident_objects() {
    let b = Aabb::cube(Vec3::ONE, 0.5);
    let mut tree = RTree::new(RTreeParams::with_max_entries(8));
    for _ in 0..2000 {
        tree.insert(b);
    }
    let (hits, _) = tree.range_query(&b);
    assert_eq!(hits.len(), 2000);
    neurospatial::rtree::validation::validate(&tree).expect("valid despite total overlap");
}
