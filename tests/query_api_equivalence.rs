//! The unified-query-API equivalence property suite: the fluent
//! [`Query`] builder must be a *pure re-surfacing* of the engine, never a
//! second engine.
//!
//! * `collect()` is **byte-identical** — results, order, statistics — to
//!   the legacy `NeuroDb` methods it replaced, for every backend,
//!   monolithic and sharded;
//! * `stream()` visits exactly the `collect()` set, in the same order,
//!   with the same statistics, with and without pushed-down predicates
//!   and limits;
//! * a pushed-down limit emits exactly a prefix of the full emission
//!   order while reading no more index pages;
//! * `session()` answers every query exactly like the one-shot
//!   terminals, across repeated reuse of its bound scratch.

use neurospatial::prelude::*;
use proptest::prelude::*;

/// Every database configuration under test: the four backends, each
/// monolithic and behind the sharded executor, all with named
/// populations so `in_population` is exercised everywhere.
fn all_dbs(
    segments: &[NeuronSegment],
    cap: usize,
    shards: usize,
    threads: usize,
) -> Vec<(String, NeuroDb)> {
    let mut out = Vec::new();
    for b in IndexBackend::ALL {
        let build = |sh: usize, th: usize| {
            NeuroDb::builder()
                .segments(segments.to_vec())
                .backend(b)
                .page_capacity(cap.max(4))
                .shards(sh)
                .threads(th)
                .split_populations("even", "odd", |s| s.neuron % 2 == 0)
                .build()
                .expect("valid configuration")
        };
        out.push((b.name().to_string(), build(1, 1)));
        if shards > 1 {
            out.push((b.sharded_name(), build(shards, threads)));
        }
    }
    out
}

fn segment_soup() -> impl Strategy<Value = Vec<NeuronSegment>> {
    prop::collection::vec(
        ((-60.0..60.0, -60.0..60.0, -60.0..60.0), (-8.0..8.0, -8.0..8.0, -8.0..8.0), 0.05..2.0f64),
        0..200,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), (dx, dy, dz), r))| {
                let p0 = Vec3::new(x, y, z);
                NeuronSegment {
                    id: i as u64,
                    neuron: (i % 5) as u32,
                    section: (i % 4) as u32,
                    index_on_section: i as u32,
                    geom: Segment::new(p0, p0 + Vec3::new(dx, dy, dz), r),
                }
            })
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb> {
    ((-80.0..80.0, -80.0..80.0, -80.0..80.0), 0.5..50.0f64)
        .prop_map(|((x, y, z), r)| Aabb::cube(Vec3::new(x, y, z), r))
}

fn ids(segments: &[NeuronSegment]) -> Vec<u64> {
    segments.iter().map(|s| s.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `collect()` == legacy `range_query` byte-identically, and
    /// `stream()` delivers the exact collect sequence with the exact
    /// collect statistics, on every backend, monolithic and sharded.
    #[test]
    fn collect_and_stream_match_legacy(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..5),
        cap in 8usize..64,
        shards in 2usize..6,
        threads in 1usize..4,
    ) {
        for (name, db) in all_dbs(&segments, cap, shards, threads) {
            for q in &queries {
                let legacy = db.index().range_query(q);
                let shim = db.range_query(q);
                let collected = db.query().range(*q).collect().expect("no population");
                prop_assert_eq!(collected.stats, legacy.stats, "{} at {}", &name, q);
                prop_assert_eq!(shim.stats, legacy.stats, "{} shim at {}", &name, q);
                prop_assert_eq!(ids(&collected.segments), ids(&legacy.segments), "{}", &name);
                prop_assert_eq!(ids(&shim.segments), ids(&legacy.segments), "{}", &name);

                let mut streamed: Vec<u64> = Vec::new();
                let stats = db.query().range(*q).stream(|s| streamed.push(s.id)).expect("ok");
                prop_assert_eq!(stats, legacy.stats, "{} stream stats at {}", &name, q);
                prop_assert_eq!(streamed, ids(&legacy.segments), "{} stream set", &name);
            }
        }
    }

    /// A pushed-down predicate filters below the traversal: the emitted
    /// sequence is the order-preserving filter of the full emission, the
    /// traversal counters are unchanged (no early exit), and stream ==
    /// collect exactly. Population membership behaves as a predicate.
    #[test]
    fn predicates_push_down_exactly(
        segments in segment_soup(),
        q in query_box(),
        modulus in 2u32..5,
        cap in 8usize..48,
        shards in 2usize..5,
    ) {
        let pred = move |s: &NeuronSegment| s.neuron.is_multiple_of(modulus);
        for (name, db) in all_dbs(&segments, cap, shards, 2) {
            let full = db.query().range(q).collect().expect("ok");
            let want: Vec<u64> =
                full.segments.iter().filter(|s| pred(s)).map(|s| s.id).collect();

            let filtered = db.query().range(q).filter(&pred).collect().expect("ok");
            prop_assert_eq!(ids(&filtered.segments), want.clone(), "{} filter", &name);
            prop_assert_eq!(filtered.stats.results as usize, want.len(), "{}", &name);
            prop_assert_eq!(filtered.stats.nodes_read, full.stats.nodes_read, "{}", &name);
            prop_assert_eq!(
                filtered.stats.objects_tested, full.stats.objects_tested,
                "{} predicate must not change traversal work", &name
            );

            let mut streamed: Vec<u64> = Vec::new();
            let stats =
                db.query().range(q).filter(&pred).stream(|s| streamed.push(s.id)).expect("ok");
            prop_assert_eq!(stats, filtered.stats, "{} stream==collect stats", &name);
            prop_assert_eq!(streamed, want, "{} stream==collect set", &name);

            // in_population == membership predicate.
            let evens = db.query().range(q).in_population("even").collect().expect("known");
            let want_even: Vec<u64> =
                full.segments.iter().filter(|s| s.neuron % 2 == 0).map(|s| s.id).collect();
            prop_assert_eq!(ids(&evens.segments), want_even, "{} population", &name);
        }
    }

    /// A pushed-down limit emits exactly a prefix of the full emission
    /// order, reads no more index pages than the full traversal, and
    /// stream == collect under the limit too.
    #[test]
    fn limits_stop_early_on_a_prefix(
        segments in segment_soup(),
        q in query_box(),
        limit in 0usize..40,
        cap in 8usize..48,
        shards in 2usize..5,
        threads in 1usize..4,
    ) {
        for (name, db) in all_dbs(&segments, cap, shards, threads) {
            let full = db.query().range(q).collect().expect("ok");
            let capped = db.query().range(q).limit(limit).collect().expect("ok");
            prop_assert_eq!(capped.segments.len(), limit.min(full.segments.len()), "{}", &name);
            prop_assert_eq!(
                ids(&capped.segments),
                ids(&full.segments[..capped.segments.len()]),
                "{} limit prefix", &name
            );
            prop_assert_eq!(capped.stats.results as usize, capped.segments.len(), "{}", &name);
            prop_assert!(
                capped.stats.nodes_read <= full.stats.nodes_read,
                "{} limit must not read more ({} > {})",
                &name, capped.stats.nodes_read, full.stats.nodes_read
            );

            let mut streamed: Vec<u64> = Vec::new();
            let stats =
                db.query().range(q).limit(limit).stream(|s| streamed.push(s.id)).expect("ok");
            prop_assert_eq!(stats, capped.stats, "{} stream==collect stats", &name);
            prop_assert_eq!(streamed, ids(&capped.segments), "{} stream==collect", &name);
        }
    }

    /// Builder KNN == legacy KNN byte-identically (ids, distance bits,
    /// statistics); the filtered form returns the brute-force k nearest
    /// among matching segments.
    #[test]
    fn knn_matches_legacy_and_filters_exactly(
        segments in segment_soup(),
        (px, py, pz) in (-70.0..70.0, -70.0..70.0, -70.0..70.0),
        k in 0usize..20,
        cap in 8usize..48,
        shards in 2usize..5,
    ) {
        let p = Vec3::new(px, py, pz);
        for (name, db) in all_dbs(&segments, cap, shards, 2) {
            let (legacy, legacy_stats) = db.index().knn(p, k);
            let (built, stats) = db.query().knn(p, k).collect().expect("ok");
            prop_assert_eq!(stats, legacy_stats, "{} knn stats", &name);
            prop_assert_eq!(built.len(), legacy.len(), "{}", &name);
            for (g, w) in built.iter().zip(&legacy) {
                prop_assert_eq!(g.segment.id, w.segment.id, "{} knn order", &name);
                prop_assert!(
                    g.distance.to_bits() == w.distance.to_bits(),
                    "{} knn distances byte-identical", &name
                );
            }

            let (odds, _) = db.query().knn(p, k).in_population("odd").collect().expect("known");
            let mut want: Vec<(f64, u64)> = segments
                .iter()
                .filter(|s| s.neuron % 2 == 1)
                .map(|s| (s.aabb().min_distance_to_point(p), s.id))
                .collect();
            want.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            prop_assert_eq!(odds.len(), k.min(want.len()), "{} filtered knn count", &name);
            for (n, (d, id)) in odds.iter().zip(&want) {
                prop_assert_eq!(n.segment.id, *id, "{} filtered knn order", &name);
                prop_assert!((n.distance - d).abs() < 1e-9, "{} filtered knn dist", &name);
            }
        }
    }

    /// One bound session answers every query — range and KNN, filtered
    /// and not — exactly like the one-shot terminals, across repeated
    /// reuse of its scratch (two passes).
    #[test]
    fn sessions_match_one_shot_terminals(
        segments in segment_soup(),
        queries in prop::collection::vec(query_box(), 1..4),
        cap in 8usize..48,
        shards in 2usize..5,
        threads in 1usize..3,
    ) {
        let pred = |s: &NeuronSegment| s.section.is_multiple_of(2);
        for (name, db) in all_dbs(&segments, cap, shards, threads) {
            let mut session =
                db.query().range(Aabb::EMPTY).filter(&pred).session().expect("ok");
            for pass in 0..2 {
                for q in &queries {
                    let want = db.query().range(*q).filter(&pred).collect().expect("ok");
                    let (hits, stats) = session.range(q);
                    prop_assert_eq!(stats, want.stats, "{} pass {} at {}", &name, pass, q);
                    prop_assert_eq!(ids(hits), ids(&want.segments), "{} session", &name);
                }
                let (got, _) = session.knn(queries[0].center(), 5);
                let (want, _) =
                    db.query().knn(queries[0].center(), 5).filter(&pred).collect().expect("ok");
                prop_assert_eq!(
                    got.iter().map(|n| n.segment.id).collect::<Vec<_>>(),
                    want.iter().map(|n| n.segment.id).collect::<Vec<_>>(),
                    "{} session knn pass {}", &name, pass
                );
            }
        }
    }

    /// The touching builder == the legacy join shims, pair for pair.
    #[test]
    fn touching_matches_legacy_joins(
        segments in segment_soup(),
        eps in 0.0..3.0f64,
        cap in 8usize..48,
    ) {
        for (name, db) in all_dbs(&segments, cap, 1, 1) {
            let legacy = db.join_between("even", "odd", eps).expect("known");
            let built =
                db.query().touching("odd", eps).in_population("even").collect().expect("ok");
            prop_assert_eq!(built.sorted_pairs(), legacy.sorted_pairs(), "{}", &name);
            prop_assert_eq!(built.pairs.len(), legacy.pairs.len(), "{}", &name);
            // The default left side is the first declared population.
            let defaulted = db.query().touching("odd", eps).collect().expect("ok");
            prop_assert_eq!(defaulted.sorted_pairs(), legacy.sorted_pairs(), "{}", &name);
            let synapse = db.find_synapse_candidates(eps).expect("two populations");
            prop_assert_eq!(synapse.sorted_pairs(), legacy.sorted_pairs(), "{}", &name);
        }
    }
}

/// Unknown names error at every terminal; empty databases answer every
/// builder form without panicking.
#[test]
fn terminals_report_errors_and_handle_empty_databases() {
    let db = NeuroDb::builder().segments(vec![]).build().expect("empty is valid");
    let q = Aabb::cube(Vec3::ZERO, 10.0);
    assert!(db.query().range(q).collect().expect("ok").is_empty());
    assert_eq!(db.query().range(q).stream(|_| {}).expect("ok"), QueryStats::default());
    let (neighbors, _) = db.query().knn(Vec3::ZERO, 3).collect().expect("ok");
    assert!(neighbors.is_empty());
    let mut session = db.query().session();
    assert!(session.range(&q).0.is_empty());

    for result in [
        db.query().range(q).in_population("nope").collect().err(),
        db.query().range(q).in_population("nope").stream(|_| {}).err(),
    ] {
        assert!(matches!(result, Some(NeuroError::UnknownPopulation { .. })));
    }
    assert!(matches!(
        db.query().knn(Vec3::ZERO, 2).in_population("nope").collect(),
        Err(NeuroError::UnknownPopulation { .. })
    ));
    assert!(matches!(
        db.query().touching("nope", 1.0).collect(),
        Err(NeuroError::UnknownPopulation { .. })
    ));
}
