//! Cross-crate property tests: the big consistency invariants that span
//! multiple subsystems, on randomly generated circuits.

use neurospatial::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn flat_equals_rtree_equals_scan_on_random_circuits(
        seed in 0u64..5000,
        neurons in 2u32..10,
        half in 5.0..40.0f64,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let db = NeuroDb::from_circuit(&c);
        let tree = RTree::bulk_load(c.segments().to_vec(), RTreeParams::with_max_entries(16));
        let q = Aabb::cube(c.bounds().center(), half);
        let f = db.range_query(&q);
        let (r, _) = tree.range_query(&q);
        let scan = c.segments().iter().filter(|s| s.aabb().intersects(&q)).count();
        prop_assert_eq!(f.len(), scan);
        prop_assert_eq!(r.len(), scan);
    }

    #[test]
    fn joins_agree_on_random_circuits(
        seed in 0u64..5000,
        neurons in 2u32..8,
        eps in 0.0..4.0f64,
    ) {
        let c = CircuitBuilder::new(seed).neurons(neurons).build();
        let (a, b) = c.split_populations();
        // Subsample to keep the nested-loop reference tractable.
        let a: Vec<_> = a.into_iter().take(400).collect();
        let b: Vec<_> = b.into_iter().take(400).collect();
        let reference = NestedLoopJoin.join(&a, &b, eps).sorted_pairs();
        prop_assert_eq!(TouchJoin::default().join(&a, &b, eps).sorted_pairs(), reference.clone());
        prop_assert_eq!(PlaneSweepJoin.join(&a, &b, eps).sorted_pairs(), reference.clone());
        prop_assert_eq!(PbsmJoin::default().join(&a, &b, eps).sorted_pairs(), reference.clone());
        prop_assert_eq!(S3Join::default().join(&a, &b, eps).sorted_pairs(), reference);
    }

    #[test]
    fn walkthrough_invariants_hold_for_any_method(
        seed in 0u64..2000,
        path_seed in 0u64..50,
    ) {
        let c = CircuitBuilder::new(seed).neurons(6).build();
        let db = NeuroDb::from_circuit(&c);
        let Some(path) = db.navigation_path(&c, path_seed, 15.0, 6.0) else {
            return Ok(());
        };
        let mut result_counts: Option<Vec<u64>> = None;
        for m in WalkthroughMethod::ALL {
            let s = db.walkthrough(&path, m).expect("flat backend");
            // Accounting identities.
            let hits: u64 = s.steps.iter().map(|t| t.demand_hits).sum();
            let misses: u64 = s.steps.iter().map(|t| t.demand_misses).sum();
            prop_assert_eq!(hits, s.total_demand_hits);
            prop_assert_eq!(misses, s.total_demand_misses);
            prop_assert!(s.useful_prefetched <= s.total_prefetched);
            prop_assert!(s.total_stall_ms >= 0.0);
            // Query semantics independent of prefetching method.
            let counts: Vec<u64> = s.steps.iter().map(|t| t.results).collect();
            match &result_counts {
                None => result_counts = Some(counts),
                Some(prev) => prop_assert_eq!(prev, &counts),
            }
        }
    }
}
